//! Heuristic sparse-cut search: produces *certified upper bounds* on edge
//! expansion (every returned cut is a real cut whose ratio is re-counted
//! from the graph).
//!
//! Three ingredients, combined by [`find_best_cut`]:
//!
//! 1. **Spectral sweep** — order vertices by the approximate Fiedler vector
//!    and evaluate every prefix (the classic Cheeger rounding).
//! 2. **Greedy cone growth** — from a seed vertex, repeatedly absorb the
//!    frontier vertex with the smallest marginal cut increase, recording the
//!    best ratio prefix along the trajectory. On the layered decode graphs
//!    this discovers the low-degree "cone" sets that realize small
//!    expansion.
//! 3. **Local refinement** — single-vertex toggles (Fiduccia–Mattheyses
//!    style) accepted when they improve the expansion ratio.

use fastmm_cdag::bitset::BitSet;
use fastmm_cdag::graph::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A concrete cut: the set, its recounted cut size, and expansion ratio.
#[derive(Clone, Debug)]
pub struct Cut {
    /// The vertex set `U`.
    pub set: BitSet,
    /// `|E(U, V∖U)|`.
    pub cut_edges: usize,
    /// `|E(U, V∖U)| / (d·|U|)`.
    pub expansion: f64,
}

/// Count the edges crossing `set` and package the ratio.
pub fn evaluate_cut(csr: &Csr, d: u32, set: BitSet) -> Cut {
    assert!(set.count() >= 1, "cut set must be nonempty");
    let mut cut = 0usize;
    for v in set.iter() {
        for &u in csr.neighbors(v) {
            if !set.contains(u) {
                cut += 1;
            }
        }
    }
    let expansion = cut as f64 / (d as f64 * set.count() as f64);
    Cut {
        set,
        cut_edges: cut,
        expansion,
    }
}

/// Evaluate every prefix of `order` (up to `max_size`) as a cut, returning
/// the best. Runs in `O(|E|)` via incremental cut maintenance.
pub fn sweep_cut(csr: &Csr, d: u32, order: &[u32], max_size: usize) -> Cut {
    assert!(!order.is_empty());
    let n = csr.n_vertices();
    let mut in_set = BitSet::new(n);
    let mut cut = 0i64;
    let mut best_prefix = 1usize;
    let mut best_ratio = f64::INFINITY;
    for (idx, &v) in order.iter().enumerate().take(max_size.min(order.len())) {
        let mut to_in = 0i64;
        for &u in csr.neighbors(v) {
            if in_set.contains(u) {
                to_in += 1;
            }
        }
        let deg = csr.neighbors(v).len() as i64;
        cut += deg - 2 * to_in;
        in_set.insert(v);
        let ratio = cut as f64 / (d as f64 * (idx + 1) as f64);
        if ratio < best_ratio {
            best_ratio = ratio;
            best_prefix = idx + 1;
        }
    }
    let set = BitSet::from_iter(n, order[..best_prefix].iter().copied());
    evaluate_cut(csr, d, set)
}

/// Greedily grow a set from `start`, always absorbing the frontier vertex
/// with minimal marginal cut increase; return the best-ratio prefix.
pub fn greedy_grow(csr: &Csr, d: u32, start: u32, max_size: usize) -> Cut {
    let n = csr.n_vertices();
    let mut in_set = BitSet::new(n);
    let mut e_to_set = vec![0u32; n];
    let mut heap: BinaryHeap<(Reverse<i64>, u32)> = BinaryHeap::new();
    let mut trajectory = Vec::with_capacity(max_size.min(n));
    let mut cut = 0i64;
    let mut best_prefix = 1usize;
    let mut best_ratio = f64::INFINITY;

    let absorb = |v: u32,
                  in_set: &mut BitSet,
                  e_to_set: &mut Vec<u32>,
                  heap: &mut BinaryHeap<(Reverse<i64>, u32)>,
                  cut: &mut i64| {
        in_set.insert(v);
        let deg = csr.neighbors(v).len() as i64;
        *cut += deg - 2 * e_to_set[v as usize] as i64;
        for &u in csr.neighbors(v) {
            if !in_set.contains(u) {
                e_to_set[u as usize] += 1;
                let delta = csr.neighbors(u).len() as i64 - 2 * e_to_set[u as usize] as i64;
                heap.push((Reverse(delta), u));
            }
        }
    };

    absorb(start, &mut in_set, &mut e_to_set, &mut heap, &mut cut);
    trajectory.push(start);
    while trajectory.len() < max_size.min(n) {
        // pop until a fresh, non-stale entry
        let v = loop {
            match heap.pop() {
                None => break None,
                Some((Reverse(delta), v)) => {
                    if in_set.contains(v) {
                        continue;
                    }
                    let fresh = csr.neighbors(v).len() as i64 - 2 * e_to_set[v as usize] as i64;
                    if fresh != delta {
                        heap.push((Reverse(fresh), v));
                        continue;
                    }
                    break Some(v);
                }
            }
        };
        let Some(v) = v else { break };
        absorb(v, &mut in_set, &mut e_to_set, &mut heap, &mut cut);
        trajectory.push(v);
        let ratio = cut as f64 / (d as f64 * trajectory.len() as f64);
        if ratio < best_ratio {
            best_ratio = ratio;
            best_prefix = trajectory.len();
        }
    }
    let set = BitSet::from_iter(n, trajectory[..best_prefix].iter().copied());
    evaluate_cut(csr, d, set)
}

/// Single-vertex toggle refinement: repeatedly scan boundary vertices and
/// apply any toggle that improves the expansion ratio while keeping
/// `1 ≤ |U| ≤ max_size`. Up to `passes` full scans.
pub fn refine(csr: &Csr, d: u32, cut: Cut, max_size: usize, passes: usize) -> Cut {
    let n = csr.n_vertices();
    let mut set = cut.set;
    let mut cut_edges = cut.cut_edges as i64;
    let df = d as f64;
    for _ in 0..passes {
        let mut improved = false;
        for v in 0..n as u32 {
            let inside = set.contains(v);
            let size = set.count() as i64;
            let new_size = if inside { size - 1 } else { size + 1 };
            if new_size < 1 || new_size as usize > max_size {
                continue;
            }
            let mut to_in = 0i64;
            for &u in csr.neighbors(v) {
                if set.contains(u) {
                    to_in += 1;
                }
            }
            let deg = csr.neighbors(v).len() as i64;
            // toggling v changes the cut by deg - 2*e(v, U∖{v})
            let delta = if inside {
                2 * to_in - deg
            } else {
                deg - 2 * to_in
            };
            let new_cut = cut_edges + delta;
            let old_ratio = cut_edges as f64 / (df * size as f64);
            let new_ratio = new_cut as f64 / (df * new_size as f64);
            if new_ratio + 1e-15 < old_ratio {
                set.toggle(v);
                cut_edges = new_cut;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let out = evaluate_cut(csr, d, set);
    debug_assert_eq!(out.cut_edges as i64, cut_edges);
    out
}

/// Search configuration for [`find_best_cut`].
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Largest allowed `|U|` (use `n/2` for plain `h(G)`, smaller for `h_s`).
    pub max_size: usize,
    /// Number of random greedy-grow restarts (beyond deterministic seeds).
    pub restarts: usize,
    /// Refinement passes per candidate.
    pub refine_passes: usize,
    /// Power-iteration count for the spectral sweep ordering.
    pub spectral_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SearchOptions {
    /// Reasonable defaults for graphs up to a few hundred thousand vertices.
    pub fn with_max_size(max_size: usize) -> Self {
        SearchOptions {
            max_size,
            restarts: 6,
            refine_passes: 3,
            spectral_iters: 300,
            seed: 42,
        }
    }
}

/// Run the full portfolio (spectral sweep + greedy grows + refinement) and
/// return the sparsest cut found. The result is an *upper bound certificate*
/// for `h_{max_size}(G)`.
pub fn find_best_cut(csr: &Csr, d: u32, opts: SearchOptions) -> Cut {
    let n = csr.n_vertices();
    assert!(n >= 2);
    let max_size = opts.max_size.clamp(1, n - 1);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut candidates: Vec<Cut> = Vec::new();

    // spectral sweep, both directions
    let (_, fiedler) = crate::spectral::spectral_bounds(csr, d, opts.spectral_iters);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        fiedler[a as usize]
            .partial_cmp(&fiedler[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.push(sweep_cut(csr, d, &order, max_size));
    order.reverse();
    candidates.push(sweep_cut(csr, d, &order, max_size));

    // greedy cones from low-degree vertices and random starts
    let mut degree_order: Vec<u32> = (0..n as u32).collect();
    degree_order.sort_by_key(|&v| csr.neighbors(v).len());
    for &s in degree_order.iter().take(3) {
        candidates.push(greedy_grow(csr, d, s, max_size));
    }
    for _ in 0..opts.restarts {
        let s = rng.gen_range(0..n as u32);
        candidates.push(greedy_grow(csr, d, s, max_size));
    }

    let mut best: Option<Cut> = None;
    for c in candidates {
        let refined = refine(csr, d, c, max_size, opts.refine_passes);
        if best
            .as_ref()
            .is_none_or(|b| refined.expansion < b.expansion)
        {
            best = Some(refined);
        }
    }
    best.expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_h;

    fn cycle(n: usize) -> Csr {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Csr::from_undirected(n, &edges)
    }

    #[test]
    fn evaluate_cut_counts_correctly() {
        let csr = cycle(6);
        let set = BitSet::from_iter(6, [0u32, 1, 2]);
        let c = evaluate_cut(&csr, 2, set);
        assert_eq!(c.cut_edges, 2);
        assert!((c.expansion - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_finds_arc_on_cycle() {
        let csr = cycle(12);
        let order: Vec<u32> = (0..12).collect();
        let c = sweep_cut(&csr, 2, &order, 6);
        // best prefix is the 6-arc: cut 2, h = 2/(2*6)
        assert_eq!(c.cut_edges, 2);
        assert_eq!(c.set.count(), 6);
    }

    #[test]
    fn greedy_grow_matches_exact_on_cycle() {
        let csr = cycle(10);
        let exact = exact_h(&csr, 2);
        let grown = greedy_grow(&csr, 2, 0, 5);
        assert!((grown.expansion - exact.expansion).abs() < 1e-12);
    }

    #[test]
    fn find_best_cut_matches_exact_on_small_graphs() {
        // barbell: two K4's joined by a single edge — the optimal cut is the
        // bridge (cut 1, size 4).
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((3, 4));
        let csr = Csr::from_undirected(8, &edges);
        let d = 4; // vertices 3 and 4 have degree 4
        let exact = exact_h(&csr, d);
        let found = find_best_cut(&csr, d, SearchOptions::with_max_size(4));
        assert!(
            (found.expansion - exact.expansion).abs() < 1e-12,
            "found {} vs exact {}",
            found.expansion,
            exact.expansion
        );
        assert_eq!(found.cut_edges, 1);
    }

    #[test]
    fn refine_never_worsens() {
        let csr = cycle(16);
        let bad = evaluate_cut(&csr, 2, BitSet::from_iter(16, [0u32, 4, 8, 12]));
        let better = refine(&csr, 2, bad.clone(), 8, 5);
        assert!(better.expansion <= bad.expansion);
    }

    #[test]
    fn max_size_respected() {
        let csr = cycle(20);
        let c = find_best_cut(&csr, 2, SearchOptions::with_max_size(3));
        assert!(c.set.count() <= 3);
    }
}
