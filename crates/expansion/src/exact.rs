//! Exact edge expansion by exhaustive subset enumeration.
//!
//! Feasible only for small graphs (the base graphs `Dec₁C`, `Enc₁A`, `H₁` of
//! Figure 2 — up to ~30 vertices in release builds). Definitions follow
//! Section 2 of the paper: the graph is conceptually made `d`-regular by
//! adding loops (which never contribute cut edges), so
//! `h(G) = min_{|U| ≤ |V|/2} |E(U, V∖U)| / (d·|U|)` with `d` the maximum
//! degree.

use fastmm_cdag::graph::Csr;

/// An exact expansion result: the minimizing set (as a bitmask over vertex
/// ids) and its cut.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactCut {
    /// Bitmask of the minimizing subset `U`.
    pub mask: u64,
    /// `|U|`.
    pub size: u32,
    /// `|E(U, V∖U)|`.
    pub cut_edges: u32,
    /// `h = cut / (d · |U|)`.
    pub expansion: f64,
}

/// Adjacency bitmasks for a graph with at most 64 vertices.
fn adjacency_masks(csr: &Csr) -> Vec<u64> {
    let n = csr.n_vertices();
    assert!(n <= 64, "exact expansion limited to 64 vertices");
    (0..n as u32)
        .map(|v| {
            let mut m = 0u64;
            for &w in csr.neighbors(v) {
                m |= 1u64 << w;
            }
            m
        })
        .collect()
}

/// Number of edges crossing between `mask` and its complement.
fn cut_of(adj: &[u64], mask: u64) -> u32 {
    let mut cut = 0u32;
    let mut bits = mask;
    while bits != 0 {
        let v = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        cut += (adj[v] & !mask).count_ones();
    }
    cut
}

/// Exact edge expansion over all sets of size at most `max_size`
/// (pass `n/2` for the standard definition, smaller for `h_s`).
///
/// `d` is the regularized degree (usually [`fastmm_cdag::Cdag::max_degree`]).
/// Complexity `O(2^n · n)`; asserts `n ≤ 30` to keep runs sane.
pub fn exact_expansion(csr: &Csr, d: u32, max_size: usize) -> ExactCut {
    let n = csr.n_vertices();
    assert!(n >= 2, "expansion undefined for < 2 vertices");
    assert!(
        n <= 30,
        "exhaustive enumeration capped at 30 vertices (got {n})"
    );
    assert!(max_size >= 1);
    let adj = adjacency_masks(csr);
    let mut best = ExactCut {
        mask: 1,
        size: 1,
        cut_edges: u32::MAX,
        expansion: f64::INFINITY,
    };
    for mask in 1u64..(1u64 << n) {
        let size = mask.count_ones();
        if size as usize > max_size {
            continue;
        }
        let cut = cut_of(&adj, mask);
        let h = cut as f64 / (d as f64 * size as f64);
        if h < best.expansion {
            best = ExactCut {
                mask,
                size,
                cut_edges: cut,
                expansion: h,
            };
        }
    }
    best
}

/// Exact `h(G)` with the canonical `|U| ≤ |V|/2` constraint.
pub fn exact_h(csr: &Csr, d: u32) -> ExactCut {
    exact_expansion(csr, d, csr.n_vertices() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_of(n: usize, edges: &[(u32, u32)]) -> Csr {
        Csr::from_undirected(n, edges)
    }

    #[test]
    fn complete_graph_k4() {
        // K4, d = 3: any |U|=1 has cut 3 -> h=1; |U|=2 has cut 4 -> 4/6.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let c = csr_of(4, &edges);
        let best = exact_h(&c, 3);
        assert_eq!(best.size, 2);
        assert_eq!(best.cut_edges, 4);
        assert!((best.expansion - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_c6() {
        // 6-cycle, d = 2: best is a contiguous arc of 3: cut 2, h = 2/(2*3) = 1/3.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)];
        let c = csr_of(6, &edges);
        let best = exact_h(&c, 2);
        assert_eq!(best.size, 3);
        assert_eq!(best.cut_edges, 2);
        assert!((best.expansion - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_pendant_cut() {
        // path of 4: pendant vertex cut = 1, d = 2, |U|=1 -> 0.5;
        // but the half {0,1} has cut 1, size 2 -> 0.25.
        let edges = [(0, 1), (1, 2), (2, 3)];
        let c = csr_of(4, &edges);
        let best = exact_h(&c, 2);
        assert_eq!(best.cut_edges, 1);
        assert_eq!(best.size, 2);
        assert!((best.expansion - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_zero_expansion() {
        let edges = [(0, 1), (2, 3)];
        let c = csr_of(4, &edges);
        let best = exact_h(&c, 1);
        assert_eq!(best.cut_edges, 0);
        assert_eq!(best.expansion, 0.0);
    }

    #[test]
    fn small_set_constraint_respected() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)];
        let c = csr_of(6, &edges);
        let best = exact_expansion(&c, 2, 1);
        assert_eq!(best.size, 1);
        assert_eq!(best.cut_edges, 2);
    }

    #[test]
    fn star_center_vs_leaf() {
        // star K1,4: d = 4. leaf alone: cut 1, h = 1/4. two leaves: 2/(4*2)=1/4.
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let c = csr_of(5, &edges);
        let best = exact_h(&c, 4);
        assert!((best.expansion - 0.25).abs() < 1e-12);
    }
}
