//! Replay of the Main Lemma's combinatorial machinery (Lemma 4.3,
//! Claims 4.7–4.10) on concrete vertex subsets of a decode graph.
//!
//! Given any `S ⊆ V(Dec_k C)`, the proof of Lemma 4.3 lower-bounds
//! `|E(S, V∖S)|` in two ways:
//!
//! * **Level homogeneity** (Claims 4.7/4.8): between consecutive levels,
//!   at least `|σ_{j+1} − σ_j| · #components(j)` base components are *mixed*
//!   (contain both `S` and non-`S` vertices), and every mixed, connected
//!   component contributes at least one cut edge.
//! * **Tree heterogeneity** (Claims 4.9/4.10, Figure 3): the densities
//!   `ρ_u` along the recursion tree must drift from the root density to the
//!   0/1 leaf densities, and each unit of drift forces mixed components.
//!
//! [`lemma43_certificate`] computes every quantity in the proof *exactly* on
//! the given set, so tests (and the E3 experiment) can check each inequality
//! of the published proof on real data.

use fastmm_cdag::bitset::BitSet;
use fastmm_cdag::layered::DecGraph;
use fastmm_cdag::tree::DecTree;

/// All quantities of the Lemma 4.3 proof evaluated on a concrete set `S`.
#[derive(Clone, Debug)]
pub struct Lemma43Certificate {
    /// `σ = |S|/|V|`.
    pub sigma: f64,
    /// Per-level densities `σ_j = |S ∩ level_j| / |level_j|` (level 0 = the
    /// paper's `l_1`, outputs).
    pub level_sigma: Vec<f64>,
    /// Exact `|E(S, V∖S)|`.
    pub cut_edges: usize,
    /// Exact number of mixed base components.
    pub mixed_components: usize,
    /// Claim 4.7 aggregate: `Σ_j |σ_{j+1} − σ_j| · #components(j)`.
    pub level_bound: f64,
    /// Per-node tree bound: `Σ_u max_i |ρ_{u_i} − ρ_u| · #components(u)`.
    pub tree_bound: f64,
    /// `Σ_{leaves v} |ρ_v − ρ_root|` (Fact 4.9 form).
    pub leaf_deviation: f64,
    /// Paper-style leaf bound `leaf_deviation / t` (valid: see module docs).
    pub leaf_bound: f64,
}

impl Lemma43Certificate {
    /// The strongest of the proof's lower bounds on the cut.
    pub fn guaranteed_cut(&self) -> f64 {
        self.level_bound.max(self.tree_bound).max(self.leaf_bound)
    }
}

/// Evaluate the Lemma 4.3 machinery on subset `s` of `dec`'s vertices.
pub fn lemma43_certificate(dec: &DecGraph, s: &BitSet) -> Lemma43Certificate {
    assert_eq!(s.universe(), dec.graph.n_vertices());
    let n = dec.graph.n_vertices() as f64;
    let sigma = s.count() as f64 / n;

    let level_sigma: Vec<f64> = (0..=dec.k)
        .map(|j| {
            let range = dec.level_range(j);
            let hits = range.clone().filter(|&v| s.contains(v)).count();
            hits as f64 / range.len() as f64
        })
        .collect();

    let mut cut_edges = 0usize;
    for u in 0..dec.graph.n_vertices() as u32 {
        let u_in = s.contains(u);
        for &v in dec.graph.succs(u) {
            if u_in != s.contains(v) {
                cut_edges += 1;
            }
        }
    }

    let mut mixed_components = 0usize;
    for j in 0..dec.k {
        for comp in dec.components_at(j) {
            let mut any_in = false;
            let mut any_out = false;
            for l in 0..dec.r {
                if s.contains(comp.input(l)) {
                    any_in = true;
                } else {
                    any_out = true;
                }
            }
            for q in 0..dec.t {
                if s.contains(comp.output(q)) {
                    any_in = true;
                } else {
                    any_out = true;
                }
            }
            if any_in && any_out {
                mixed_components += 1;
            }
        }
    }

    let level_bound: f64 = (0..dec.k)
        .map(|j| (level_sigma[j + 1] - level_sigma[j]).abs() * dec.component_count(j) as f64)
        .sum();

    let tree = DecTree::new(dec);
    let mut tree_bound = 0.0;
    let mut parent_rho = tree.rho_at_depth(s, 0);
    for dep in 1..=dec.k {
        let rho = tree.rho_at_depth(s, dep);
        // pool size: #components between a node at depth dep-1 and its
        // children = r^{k - dep}
        let pool = dec.r.pow((dec.k - dep) as u32) as f64;
        for (parent, _) in parent_rho.iter().enumerate() {
            let max_dev = (0..dec.t)
                .map(|q| (rho[parent * dec.t + q] - parent_rho[parent]).abs())
                .fold(0.0, f64::max);
            tree_bound += max_dev * pool;
        }
        parent_rho = rho;
    }

    let rho_root = level_sigma[dec.k];
    let l1 = dec.level_size(0) as f64;
    let in_l1 = level_sigma[0] * l1;
    let leaf_deviation = in_l1 * (1.0 - rho_root) + (l1 - in_l1) * rho_root;
    let leaf_bound = leaf_deviation / dec.t as f64;

    Lemma43Certificate {
        sigma,
        level_sigma,
        cut_edges,
        mixed_components,
        level_bound,
        tree_bound,
        leaf_deviation,
        leaf_bound,
    }
}

/// The explicit constant-bearing lower bound on `h(Dec_k C)` that the proof
/// of Lemma 4.3 guarantees:
/// `h ≥ (|l_1| / |V|) / (c_case · d)` with `c_case = max(10·t, t/0.405) = 40`
/// for Strassen — i.e. `h(Dec_k C) ≥ (3/(7·40·d)) · (4/7)^k`-ish, the
/// `Ω((t/r)^k)` of the Main Lemma with all constants spelled out.
pub fn lemma43_min_expansion(dec: &DecGraph, d: u32) -> f64 {
    let l1_frac = dec.level_size(0) as f64 / dec.graph.n_vertices() as f64;
    // Case 1 (some level deviates by ≥ σ/10): cut ≥ |l1|·σ/(10·t).
    let case1 = 1.0 / (10.0 * dec.t as f64);
    // Case 2 (all levels within σ/10 of σ, σ ≤ 1/2):
    // leaf_deviation ≥ |l1|·((1−σ₁)ρ_r + σ₁(1−ρ_r)) ≥ |l1|·0.405·σ,
    // cut ≥ leaf_deviation / t.
    let case2 = 0.405 / dec.t as f64;
    let c = case1.min(case2);
    l1_frac * c / d as f64
}

/// Claim 2.1 / Corollary 4.4 transfer: if `G` decomposes into edge-disjoint
/// copies of `G'` (`d'`-regularized, `|V'|` vertices) with `h(G') ≥ h_small`,
/// then sets of size at most `|V'|/2` in `G` have expansion at least
/// `h_small · d'/d`. Returns `(s, h_s lower bound)`.
pub fn small_set_expansion_bound(
    v_small: usize,
    h_small: f64,
    d_small: u32,
    d_big: u32,
) -> (usize, f64) {
    (v_small / 2, h_small * d_small as f64 / d_big as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmm_cdag::layered::{build_dec, SchemeShape};
    use fastmm_matrix::scheme::strassen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dec(k: usize) -> DecGraph {
        build_dec(&SchemeShape::from_scheme(&strassen()), k)
    }

    fn random_subset(n: usize, frac: f64, seed: u64) -> BitSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BitSet::new(n);
        for v in 0..n as u32 {
            if rng.gen::<f64>() < frac {
                s.insert(v);
            }
        }
        if s.count() == 0 {
            s.insert(0);
        }
        s
    }

    #[test]
    fn proof_inequalities_hold_on_random_sets() {
        // Every bound in the certificate must be a genuine lower bound on
        // mixed components, and mixed components a lower bound on cut edges.
        for k in 1..=3usize {
            let d = dec(k);
            for seed in 0..8u64 {
                let frac = 0.1 + 0.05 * seed as f64;
                let s = random_subset(d.graph.n_vertices(), frac, seed);
                let cert = lemma43_certificate(&d, &s);
                assert!(
                    cert.mixed_components <= cert.cut_edges,
                    "k={k} seed={seed}: mixed {} > cut {}",
                    cert.mixed_components,
                    cert.cut_edges
                );
                let m = cert.mixed_components as f64 + 1e-9;
                assert!(cert.level_bound <= m, "k={k} seed={seed}: level bound");
                assert!(cert.tree_bound <= m, "k={k} seed={seed}: tree bound");
                assert!(cert.leaf_bound <= m, "k={k} seed={seed}: leaf bound");
            }
        }
    }

    #[test]
    fn empty_levels_give_zero_bounds() {
        let d = dec(2);
        let mut s = BitSet::new(d.graph.n_vertices());
        s.insert(0);
        s.remove(0);
        s.insert(d.vertex(0, 0));
        let cert = lemma43_certificate(&d, &s);
        assert!(cert.cut_edges > 0);
        assert!(cert.sigma > 0.0);
    }

    #[test]
    fn full_set_has_zero_cut() {
        let d = dec(2);
        let s = BitSet::from_iter(d.graph.n_vertices(), 0..d.graph.n_vertices() as u32);
        let cert = lemma43_certificate(&d, &s);
        assert_eq!(cert.cut_edges, 0);
        assert_eq!(cert.mixed_components, 0);
        assert!(cert.guaranteed_cut() < 1e-9);
    }

    #[test]
    fn half_top_level_set_is_detected() {
        let d = dec(3);
        let top: Vec<u32> = d.level_range(3).collect();
        let s = BitSet::from_iter(d.graph.n_vertices(), top[..top.len() / 2].iter().copied());
        let cert = lemma43_certificate(&d, &s);
        // only the top level is populated: σ_3 = 1/2 ± ε, σ_0..2 = 0
        assert!((cert.level_sigma[3] - 0.5).abs() < 0.01);
        assert!(cert.level_sigma[0] == 0.0);
        assert!(cert.level_bound > 0.0);
        assert!(cert.cut_edges >= cert.guaranteed_cut() as usize);
    }

    #[test]
    fn min_expansion_guarantee_scales_like_4_7() {
        let d2 = dec(2);
        let d4 = dec(4);
        let g2 = lemma43_min_expansion(&d2, 6);
        let g4 = lemma43_min_expansion(&d4, 6);
        // ratio over two extra levels ≈ (4/7)^2
        let ratio = g4 / g2;
        let expect = (4.0f64 / 7.0).powi(2);
        assert!(
            (ratio / expect - 1.0).abs() < 0.2,
            "ratio {ratio} vs {expect}"
        );
    }

    #[test]
    fn guarantee_is_below_known_cuts() {
        // any explicit cut's expansion must dominate the proof's guarantee
        let d = dec(2);
        let guarantee = lemma43_min_expansion(&d, d.graph.max_degree());
        let s = random_subset(d.graph.n_vertices(), 0.3, 99);
        if s.count() <= d.graph.n_vertices() / 2 {
            let cert = lemma43_certificate(&d, &s);
            let h = cert.cut_edges as f64 / (d.graph.max_degree() as f64 * s.count() as f64);
            assert!(h >= guarantee, "h {h} vs guarantee {guarantee}");
        }
    }

    #[test]
    fn small_set_transfer_formula() {
        let (s, h) = small_set_expansion_bound(93, 0.1, 6, 6);
        assert_eq!(s, 46);
        assert!((h - 0.1).abs() < 1e-12);
        let (_, h2) = small_set_expansion_bound(93, 0.1, 6, 12);
        assert!((h2 - 0.05).abs() < 1e-12);
    }
}
