//! The recursion tree `T_k` of a decode graph (paper Figure 3) and the
//! subset-density machinery `ρ_u` used in the proof of Lemma 4.3.
//!
//! `T_k` has height `k+1`; its root corresponds to the largest level
//! `l_{k+1}` of `G_k = Dec_k C`, each internal node has `t` (= 4 for
//! Strassen) children, and the node at depth `dep` with region index `o`
//! corresponds to the vertices of level `k - dep` (output-side counting)
//! whose region prefix is `o` — a contiguous id range thanks to the
//! mixed-radix vertex indexing of [`crate::layered`].

use crate::bitset::BitSet;
use crate::layered::DecGraph;

/// A node of the recursion tree: depth from the root and region index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Distance from the root (root = 0, leaves = k).
    pub depth: usize,
    /// Region index `o ∈ [t^depth]`.
    pub region: usize,
}

/// The recursion tree over a [`DecGraph`].
pub struct DecTree<'a> {
    dec: &'a DecGraph,
}

impl<'a> DecTree<'a> {
    /// View the tree of a decode graph.
    pub fn new(dec: &'a DecGraph) -> Self {
        DecTree { dec }
    }

    /// The root (corresponds to the whole product level `l_{k+1}`).
    pub fn root(&self) -> TreeNode {
        TreeNode {
            depth: 0,
            region: 0,
        }
    }

    /// `t` children of an internal node.
    pub fn children(&self, u: TreeNode) -> Vec<TreeNode> {
        assert!(u.depth < self.dec.k, "leaves have no children");
        (0..self.dec.t)
            .map(|q| TreeNode {
                depth: u.depth + 1,
                region: u.region * self.dec.t + q,
            })
            .collect()
    }

    /// Parent of a non-root node.
    pub fn parent(&self, u: TreeNode) -> TreeNode {
        assert!(u.depth > 0, "root has no parent");
        TreeNode {
            depth: u.depth - 1,
            region: u.region / self.dec.t,
        }
    }

    /// Number of nodes at depth `dep` (`t^dep`).
    pub fn width(&self, dep: usize) -> usize {
        self.dec.t.pow(dep as u32)
    }

    /// The vertex set `V_u ⊆ V(G_k)` of node `u`: a contiguous id range of
    /// size `r^{k - depth}` inside level `k - depth`.
    pub fn vertex_range(&self, u: TreeNode) -> std::ops::Range<u32> {
        let level = self.dec.k - u.depth;
        let span = self.dec.r.pow(level as u32);
        let start = self.dec.vertex(level, u.region * span);
        start..start + span as u32
    }

    /// `|V_u|`.
    pub fn set_size(&self, u: TreeNode) -> usize {
        self.dec.r.pow((self.dec.k - u.depth) as u32)
    }

    /// `ρ_u = |S ∩ V_u| / |V_u|` for a vertex subset `S`.
    pub fn rho(&self, s: &BitSet, u: TreeNode) -> f64 {
        let range = self.vertex_range(u);
        let hits = range.clone().filter(|&v| s.contains(v)).count();
        hits as f64 / (range.len() as f64)
    }

    /// All `ρ_u` at a given depth, computed in one sweep over the level.
    pub fn rho_at_depth(&self, s: &BitSet, dep: usize) -> Vec<f64> {
        let level = self.dec.k - dep;
        let span = self.dec.r.pow(level as u32);
        let width = self.width(dep);
        let mut counts = vec![0usize; width];
        for (idx, v) in self.dec.level_range(level).enumerate() {
            if s.contains(v) {
                counts[idx / span] += 1;
            }
        }
        counts.into_iter().map(|c| c as f64 / span as f64).collect()
    }

    /// The tree-heterogeneity sum `Σ_{u} |ρ_u − ρ_{p(u)}| · |V_u|` over all
    /// non-root nodes — the quantity Claim 4.10 charges cut edges against.
    pub fn heterogeneity(&self, s: &BitSet) -> f64 {
        let mut total = 0.0;
        let mut parent_rho = self.rho_at_depth(s, 0);
        for dep in 1..=self.dec.k {
            let rho = self.rho_at_depth(s, dep);
            let set = self.set_size(TreeNode {
                depth: dep,
                region: 0,
            }) as f64;
            for (o, &ru) in rho.iter().enumerate() {
                total += (ru - parent_rho[o / self.dec.t]).abs() * set;
            }
            parent_rho = rho;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layered::{build_dec, SchemeShape};
    use fastmm_matrix::scheme::strassen;

    fn dec(k: usize) -> DecGraph {
        build_dec(&SchemeShape::from_scheme(&strassen()), k)
    }

    #[test]
    fn tree_shape() {
        let d = dec(3);
        let t = DecTree::new(&d);
        assert_eq!(t.width(0), 1);
        assert_eq!(t.width(1), 4);
        assert_eq!(t.width(3), 64);
        assert_eq!(t.set_size(t.root()), 343);
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 4);
        for kid in kids {
            assert_eq!(t.set_size(kid), 49);
            assert_eq!(t.parent(kid), t.root());
        }
    }

    #[test]
    fn vertex_ranges_partition_levels() {
        let d = dec(3);
        let t = DecTree::new(&d);
        for dep in 0..=3usize {
            let level = 3 - dep;
            let mut covered = 0usize;
            let mut prev_end = d.level_range(level).start;
            for o in 0..t.width(dep) {
                let range = t.vertex_range(TreeNode {
                    depth: dep,
                    region: o,
                });
                assert_eq!(range.start, prev_end, "ranges must be contiguous");
                prev_end = range.end;
                covered += range.len();
            }
            assert_eq!(covered, d.level_size(level));
        }
    }

    #[test]
    fn rho_root_is_fraction_of_top_level() {
        let d = dec(2);
        let t = DecTree::new(&d);
        let mut s = BitSet::new(d.graph.n_vertices());
        // put half of the product level into S
        let top: Vec<u32> = d.level_range(2).collect();
        for &v in &top[..top.len() / 2] {
            s.insert(v);
        }
        let rho = t.rho(&s, t.root());
        assert!((rho - (top.len() / 2) as f64 / top.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn rho_at_depth_matches_pointwise() {
        let d = dec(3);
        let t = DecTree::new(&d);
        let mut s = BitSet::new(d.graph.n_vertices());
        // arbitrary but deterministic subset
        for v in d.level_range(2).step_by(3) {
            s.insert(v);
        }
        for v in d.level_range(3).step_by(5) {
            s.insert(v);
        }
        for dep in 0..=3usize {
            let bulk = t.rho_at_depth(&s, dep);
            assert_eq!(bulk.len(), t.width(dep));
            for (o, &b) in bulk.iter().enumerate() {
                let single = t.rho(
                    &s,
                    TreeNode {
                        depth: dep,
                        region: o,
                    },
                );
                assert!((b - single).abs() < 1e-12, "dep={dep} o={o}");
            }
        }
    }

    #[test]
    fn leaf_rho_is_zero_or_one() {
        let d = dec(2);
        let t = DecTree::new(&d);
        let mut s = BitSet::new(d.graph.n_vertices());
        s.insert(d.vertex(0, 0));
        s.insert(d.vertex(0, 5));
        let leaf_rho = t.rho_at_depth(&s, 2);
        assert_eq!(leaf_rho.len(), 16);
        for r in leaf_rho {
            assert!(r == 0.0 || r == 1.0);
        }
    }

    #[test]
    fn heterogeneity_zero_for_empty_and_full() {
        let d = dec(2);
        let t = DecTree::new(&d);
        let empty = BitSet::new(d.graph.n_vertices());
        assert_eq!(t.heterogeneity(&empty), 0.0);
        let full = BitSet::from_iter(d.graph.n_vertices(), 0..d.graph.n_vertices() as u32);
        assert_eq!(t.heterogeneity(&full), 0.0);
    }

    #[test]
    fn heterogeneity_positive_for_skewed_set() {
        let d = dec(2);
        let t = DecTree::new(&d);
        // S = one subtree's worth of level-0 vertices: leaves disagree with root
        let mut s = BitSet::new(d.graph.n_vertices());
        for v in d.level_range(0).take(4) {
            s.insert(v);
        }
        assert!(t.heterogeneity(&s) > 0.0);
    }
}
