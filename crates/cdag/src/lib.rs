//! # fastmm-cdag — computation DAGs of Strassen-like algorithms
//!
//! Builds and analyzes the computation graphs at the heart of *Ballard,
//! Demmel, Holtz, Schwartz (SPAA'11)*:
//!
//! * [`graph`] — the CDAG representation (Section 3.1), degree/connectivity
//!   utilities, binary-tree expansion of high in-degree vertices
//!   (Comment 4.1), DOT export for the Figure 2 drawings;
//! * [`layered`] — the top-down construction of `Enc_k A`, `Enc_k B`,
//!   `Dec_k C`, and `H_k` (Section 4.1.1), `G₁` component enumeration, and
//!   the edge-disjoint decomposition of Claim 2.1 / Corollary 4.4;
//! * [`trace`] — a tracing executor recording the true CDAG of an actual
//!   recursive run (including Winograd's shared subexpressions and classical
//!   base cases below a cutoff);
//! * [`tree`] — the recursion tree `T_k` of Figure 3 with the `ρ_u`
//!   machinery from the proof of Lemma 4.3;
//! * [`bitset`] — compact vertex subsets for the expansion/partition
//!   arguments.

#![warn(missing_docs)]

pub mod bitset;
pub mod graph;
pub mod layered;
pub mod trace;
pub mod tree;

pub use bitset::BitSet;
pub use graph::{Cdag, Csr, Layering, VKind};
pub use layered::{
    build_dec, build_enc, build_h, DecGraph, EncGraph, EncSide, HGraph, SchemeShape,
};
pub use trace::{trace_multiply, trace_multiply_mkn, TracedCdag};
pub use tree::{DecTree, TreeNode};
