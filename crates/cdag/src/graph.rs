//! The computation directed acyclic graph (CDAG) representation.
//!
//! Per Section 3.1 of the paper: one vertex per input element and per
//! arithmetic operation; a directed edge `(u, v)` whenever the value produced
//! at `u` is an operand of `v`. In-degree is at most 2 for genuine binary
//! operations, but the *flat* decode graphs (Comment 4.1) use higher
//! in-degree sum vertices, which [`Cdag::expand_high_in_degree`] rewrites
//! into binary trees (chains) when bounded degree is needed (Fact 4.2).
//!
//! # Flat-array core
//!
//! The graph is stored structure-of-arrays: a `kinds` vector plus a CSR
//! successor array (`row_ptr`/`col_idx`, rows sorted ascending) and its
//! transpose (predecessors), built once per mutation epoch by a three-pass
//! counting sort — no per-row comparison sorts, no per-node `Vec<Vec<u32>>`.
//! Consumers read adjacency through [`Cdag::succs`]/[`Cdag::preds`] slices;
//! the raw `(src, dst)` tuple log survives only as the internal build buffer
//! behind the deprecated [`Cdag::edges`] compatibility shim. This is what
//! lets layering, pebbling, and expansion certificates run on the ℓ≥7
//! million-vertex decode graphs (see the e15 `repro_graph_scale` experiment).

use std::collections::VecDeque;
use std::sync::OnceLock;

/// The role of a vertex in the computation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum VKind {
    /// An input element (no predecessors).
    Input,
    /// An addition/subtraction (linear combination) vertex.
    Add,
    /// A scalar multiplication vertex (the bilinear products).
    Mul,
}

/// Directed adjacency in CSR form: sorted successor rows plus the transpose.
#[derive(Clone, Debug, Default)]
struct AdjCache {
    /// `succ_ptr[v]..succ_ptr[v+1]` indexes `succ_idx`, row sorted ascending.
    succ_ptr: Vec<u32>,
    succ_idx: Vec<u32>,
    /// Transpose: predecessor rows, also sorted ascending.
    pred_ptr: Vec<u32>,
    pred_idx: Vec<u32>,
}

/// A computation DAG with directed edges `(src, dst)` meaning "dst consumes
/// the value produced by src".
#[derive(Clone, Debug, Default)]
pub struct Cdag {
    kinds: Vec<VKind>,
    edges: Vec<(u32, u32)>,
    adj: OnceLock<AdjCache>,
    und: OnceLock<Csr>,
    /// Vertices designated as program inputs.
    pub inputs: Vec<u32>,
    /// Vertices designated as program outputs.
    pub outputs: Vec<u32>,
}

impl Cdag {
    /// Empty graph.
    pub fn new() -> Self {
        Cdag::default()
    }

    /// Add a vertex of the given kind, returning its id.
    pub fn add_vertex(&mut self, kind: VKind) -> u32 {
        self.invalidate_adj();
        self.kinds.push(kind);
        (self.kinds.len() - 1) as u32
    }

    /// Add a directed edge `src -> dst`.
    pub fn add_edge(&mut self, src: u32, dst: u32) {
        debug_assert!((src as usize) < self.kinds.len());
        debug_assert!((dst as usize) < self.kinds.len());
        self.invalidate_adj();
        self.edges.push((src, dst));
    }

    fn invalidate_adj(&mut self) {
        if self.adj.get().is_some() {
            self.adj = OnceLock::new();
        }
        if self.und.get().is_some() {
            self.und = OnceLock::new();
        }
    }

    /// The CSR adjacency for the current edge set, built lazily by a
    /// three-pass counting sort (O(V+E), no comparison sorts):
    /// 1. counting-sort the edge log by source (rows in insertion order),
    /// 2. scatter sources ascending into the transpose → sorted pred rows,
    /// 3. scatter destinations ascending back → sorted succ rows.
    fn adj(&self) -> &AdjCache {
        self.adj.get_or_init(|| {
            let n = self.n_vertices();
            let ne = self.edges.len();
            debug_assert!(ne <= u32::MAX as usize, "edge count exceeds u32 index");
            let mut succ_ptr = vec![0u32; n + 1];
            for &(u, _) in &self.edges {
                succ_ptr[u as usize + 1] += 1;
            }
            for i in 0..n {
                succ_ptr[i + 1] += succ_ptr[i];
            }
            let mut by_src = vec![0u32; ne];
            let mut cur: Vec<u32> = succ_ptr[..n].to_vec();
            for &(u, v) in &self.edges {
                let c = &mut cur[u as usize];
                by_src[*c as usize] = v;
                *c += 1;
            }
            let mut pred_ptr = vec![0u32; n + 1];
            for &(_, v) in &self.edges {
                pred_ptr[v as usize + 1] += 1;
            }
            for i in 0..n {
                pred_ptr[i + 1] += pred_ptr[i];
            }
            let mut pred_idx = vec![0u32; ne];
            cur.copy_from_slice(&pred_ptr[..n]);
            for u in 0..n {
                for &v in &by_src[succ_ptr[u] as usize..succ_ptr[u + 1] as usize] {
                    let c = &mut cur[v as usize];
                    pred_idx[*c as usize] = u as u32;
                    *c += 1;
                }
            }
            let mut succ_idx = by_src;
            cur.copy_from_slice(&succ_ptr[..n]);
            for v in 0..n {
                for &u in &pred_idx[pred_ptr[v] as usize..pred_ptr[v + 1] as usize] {
                    let c = &mut cur[u as usize];
                    succ_idx[*c as usize] = v as u32;
                    *c += 1;
                }
            }
            AdjCache {
                succ_ptr,
                succ_idx,
                pred_ptr,
                pred_idx,
            }
        })
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.kinds.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Kind of vertex `v`.
    pub fn kind(&self, v: u32) -> VKind {
        self.kinds[v as usize]
    }

    /// Successors of `v` (sorted ascending).
    #[inline]
    pub fn succs(&self, v: u32) -> &[u32] {
        let a = self.adj();
        &a.succ_idx[a.succ_ptr[v as usize] as usize..a.succ_ptr[v as usize + 1] as usize]
    }

    /// Predecessors of `v` (sorted ascending).
    #[inline]
    pub fn preds(&self, v: u32) -> &[u32] {
        let a = self.adj();
        &a.pred_idx[a.pred_ptr[v as usize] as usize..a.pred_ptr[v as usize + 1] as usize]
    }

    /// All edges as the raw `(src, dst)` insertion log.
    #[deprecated(note = "iterate `succs(v)` / `preds(v)` over the CSR core instead; \
                the tuple log is now an internal build buffer")]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Count of vertices per kind `(inputs, adds, muls)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for k in &self.kinds {
            match k {
                VKind::Input => c.0 += 1,
                VKind::Add => c.1 += 1,
                VKind::Mul => c.2 += 1,
            }
        }
        c
    }

    /// In-degrees of all vertices (a row-pointer difference, no edge scan).
    pub fn in_degrees(&self) -> Vec<u32> {
        let a = self.adj();
        (0..self.n_vertices())
            .map(|v| a.pred_ptr[v + 1] - a.pred_ptr[v])
            .collect()
    }

    /// Out-degrees of all vertices.
    pub fn out_degrees(&self) -> Vec<u32> {
        let a = self.adj();
        (0..self.n_vertices())
            .map(|v| a.succ_ptr[v + 1] - a.succ_ptr[v])
            .collect()
    }

    /// Total (undirected) degrees.
    pub fn degrees(&self) -> Vec<u32> {
        let a = self.adj();
        (0..self.n_vertices())
            .map(|v| (a.succ_ptr[v + 1] - a.succ_ptr[v]) + (a.pred_ptr[v + 1] - a.pred_ptr[v]))
            .collect()
    }

    /// Maximum total degree (the `d` against which expansion is normalized
    /// after conceptually adding loops; Section 2.0.2).
    pub fn max_degree(&self) -> u32 {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Undirected adjacency in CSR form, built once and cached.
    pub fn undirected_csr(&self) -> &Csr {
        self.und
            .get_or_init(|| Csr::from_undirected(self.n_vertices(), &self.edges))
    }

    /// Is the underlying undirected graph connected?
    pub fn is_connected(&self) -> bool {
        self.connected_components() == 1
    }

    /// Number of connected components of the underlying undirected graph.
    pub fn connected_components(&self) -> usize {
        let n = self.n_vertices();
        if n == 0 {
            return 0;
        }
        let csr = self.undirected_csr();
        let mut seen = vec![false; n];
        let mut comps = 0;
        let mut queue = VecDeque::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            comps += 1;
            seen[s] = true;
            queue.push_back(s as u32);
            while let Some(u) = queue.pop_front() {
                for &w in csr.neighbors(u) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        comps
    }

    /// A topological order (Kahn). Panics if the graph has a cycle, which
    /// would mean the builder produced something that is not a DAG.
    pub fn topological_order(&self) -> Vec<u32> {
        let n = self.n_vertices();
        let mut indeg = self.in_degrees();
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &w in self.succs(u) {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(order.len(), n, "cycle detected in CDAG");
        order
    }

    /// Vectorized Kahn / Coffman–Graham layering over the flat CSR arrays:
    /// level 0 is the sources, and every other vertex sits one past its
    /// deepest predecessor (longest-path layering). One sweep over the
    /// topological order assigns levels; a counting sort groups vertices
    /// into the flat [`Layering`] (within a level, ids ascend). Panics on a
    /// cycle.
    pub fn kahn_layers(&self) -> Layering {
        let n = self.n_vertices();
        let topo = self.topological_order();
        let mut level = vec![0u32; n];
        let mut n_levels = if n == 0 { 0 } else { 1 };
        for &v in &topo {
            let lv = level[v as usize] + 1;
            for &w in self.succs(v) {
                if level[w as usize] < lv {
                    level[w as usize] = lv;
                    if (lv + 1) as usize > n_levels {
                        n_levels = (lv + 1) as usize;
                    }
                }
            }
        }
        let mut level_ptr = vec![0u32; n_levels + 1];
        for &l in &level {
            level_ptr[l as usize + 1] += 1;
        }
        for i in 0..n_levels {
            level_ptr[i + 1] += level_ptr[i];
        }
        let mut order = vec![0u32; n];
        let mut cur: Vec<u32> = level_ptr[..n_levels].to_vec();
        for (v, &l) in level.iter().enumerate() {
            let c = &mut cur[l as usize];
            order[*c as usize] = v as u32;
            *c += 1;
        }
        Layering { level_ptr, order }
    }

    /// Rewrite every vertex of in-degree `> 2` into a chain of binary Add
    /// vertices (Comment 4.1: a high in-degree vertex "represents a full
    /// binary (not necessarily balanced) tree"). Returns the new graph; the
    /// vertex ids of the original graph are preserved, chain-internal
    /// vertices are appended at the end. Input/output designations carry
    /// over. Predecessors are consumed in ascending-id order (identical to
    /// the historical edge-insertion order on the layered decode graphs).
    pub fn expand_high_in_degree(&self) -> Cdag {
        let n = self.n_vertices();
        let mut out = Cdag {
            kinds: self.kinds.clone(),
            edges: Vec::with_capacity(self.edges.len()),
            adj: OnceLock::new(),
            und: OnceLock::new(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
        };
        for v in 0..n as u32 {
            let ps = self.preds(v);
            if ps.len() <= 2 {
                for &p in ps {
                    out.add_edge(p, v);
                }
            } else {
                // chain: acc = p0 + p1; acc = acc + p2; ...; v = acc + p_last
                let mut acc = out.add_vertex(VKind::Add);
                out.add_edge(ps[0], acc);
                out.add_edge(ps[1], acc);
                for &p in &ps[2..ps.len() - 1] {
                    let nxt = out.add_vertex(VKind::Add);
                    out.add_edge(acc, nxt);
                    out.add_edge(p, nxt);
                    acc = nxt;
                }
                out.add_edge(acc, v);
                out.add_edge(ps[ps.len() - 1], v);
            }
        }
        out
    }

    /// GraphViz DOT rendering (used for the Figure 2 reproductions). Only
    /// sensible for small graphs.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=BT;");
        for v in 0..self.n_vertices() as u32 {
            let (shape, label) = match self.kind(v) {
                VKind::Input => ("box", "in"),
                VKind::Add => ("circle", "+"),
                VKind::Mul => ("doublecircle", "*"),
            };
            let extra = if self.outputs.contains(&v) {
                ", style=filled, fillcolor=gray85"
            } else {
                ""
            };
            let _ = writeln!(s, "  v{v} [shape={shape}, label=\"{label}{v}\"{extra}];");
        }
        for &(u, v) in &self.edges {
            let _ = writeln!(s, "  v{u} -> v{v};");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

/// A level assignment in flat CSR-of-levels form: `order` lists vertices
/// grouped by level (ids ascending within a level), `level_ptr[j]..level_ptr
/// [j+1]` delimits level `j`. Produced by [`Cdag::kahn_layers`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layering {
    /// `n_levels + 1` offsets into `order`.
    pub level_ptr: Vec<u32>,
    /// All vertices, grouped by level.
    pub order: Vec<u32>,
}

impl Layering {
    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.level_ptr.len().saturating_sub(1)
    }

    /// Vertices at level `j` (ascending ids).
    pub fn level(&self, j: usize) -> &[u32] {
        &self.order[self.level_ptr[j] as usize..self.level_ptr[j + 1] as usize]
    }

    /// Total vertex count.
    pub fn n_vertices(&self) -> usize {
        self.order.len()
    }

    /// Per-vertex level indices (inverse of the grouping).
    pub fn level_of(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.order.len()];
        for j in 0..self.n_levels() {
            for &v in self.level(j) {
                lv[v as usize] = j as u32;
            }
        }
        lv
    }
}

/// Compressed sparse row adjacency.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Build undirected adjacency (each edge appears in both endpoint lists).
    pub fn from_undirected(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Build directed successor adjacency.
    pub fn from_directed(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut deg = vec![0usize; n];
        for &(u, _) in edges {
            deg[u as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cdag {
        // in0 -> a, in1 -> a, a -> b, in1 -> b
        let mut g = Cdag::new();
        let i0 = g.add_vertex(VKind::Input);
        let i1 = g.add_vertex(VKind::Input);
        let a = g.add_vertex(VKind::Add);
        let b = g.add_vertex(VKind::Add);
        g.add_edge(i0, a);
        g.add_edge(i1, a);
        g.add_edge(a, b);
        g.add_edge(i1, b);
        g.inputs = vec![i0, i1];
        g.outputs = vec![b];
        g
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.kind_counts(), (2, 2, 0));
        assert_eq!(g.in_degrees(), vec![0, 0, 2, 2]);
        assert_eq!(g.out_degrees(), vec![1, 2, 1, 0]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn csr_accessors_are_sorted_views() {
        let g = diamond();
        assert_eq!(g.succs(0), &[2]);
        assert_eq!(g.succs(1), &[2, 3]);
        assert_eq!(g.succs(2), &[3]);
        assert_eq!(g.succs(3), &[] as &[u32]);
        assert_eq!(g.preds(2), &[0, 1]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.preds(0), &[] as &[u32]);
    }

    #[test]
    fn csr_cache_invalidated_on_mutation() {
        let mut g = diamond();
        assert_eq!(g.succs(3), &[] as &[u32]);
        let c = g.add_vertex(VKind::Add);
        g.add_edge(3, c);
        assert_eq!(g.succs(3), &[c]);
        assert_eq!(g.preds(c), &[3]);
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(g.is_connected());
        let mut g2 = diamond();
        let lonely = g2.add_vertex(VKind::Input);
        assert!(!g2.is_connected());
        assert_eq!(g2.connected_components(), 2);
        let _ = lonely;
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = (0..4u32)
            .map(|v| order.iter().position(|&x| x == v).unwrap())
            .collect();
        for v in 0..g.n_vertices() as u32 {
            for &w in g.succs(v) {
                assert!(
                    pos[v as usize] < pos[w as usize],
                    "edge {v}->{w} out of order"
                );
            }
        }
    }

    #[test]
    fn kahn_layers_match_longest_paths() {
        let g = diamond();
        let l = g.kahn_layers();
        assert_eq!(l.n_levels(), 3);
        assert_eq!(l.level(0), &[0, 1]);
        assert_eq!(l.level(1), &[2]);
        assert_eq!(l.level(2), &[3]);
        assert_eq!(l.n_vertices(), 4);
        assert_eq!(l.level_of(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn kahn_layers_every_vertex_past_its_preds() {
        let g = diamond().expand_high_in_degree();
        let l = g.kahn_layers();
        let lv = l.level_of();
        for v in 0..g.n_vertices() as u32 {
            for &p in g.preds(v) {
                assert!(lv[p as usize] < lv[v as usize], "pred {p} not below {v}");
            }
        }
    }

    #[test]
    fn expand_high_in_degree_makes_binary() {
        let mut g = Cdag::new();
        let ins: Vec<u32> = (0..5).map(|_| g.add_vertex(VKind::Input)).collect();
        let sum = g.add_vertex(VKind::Add);
        for &i in &ins {
            g.add_edge(i, sum);
        }
        let e = g.expand_high_in_degree();
        let indeg = e.in_degrees();
        assert!(indeg.iter().all(|&d| d <= 2), "in-degrees {indeg:?}");
        // 5 inputs need 4 binary adds total; the original vertex is one of
        // them, so 3 fresh chain vertices appear.
        assert_eq!(e.n_vertices(), g.n_vertices() + 3);
        // value dependency preserved: all inputs still reach `sum`
        let mut reach = vec![false; e.n_vertices()];
        let mut stack = vec![ins[0]];
        while let Some(u) = stack.pop() {
            if reach[u as usize] {
                continue;
            }
            reach[u as usize] = true;
            stack.extend(e.succs(u));
        }
        assert!(reach[sum as usize]);
    }

    #[test]
    fn expand_leaves_binary_untouched() {
        let g = diamond();
        let e = g.expand_high_in_degree();
        assert_eq!(e.n_vertices(), g.n_vertices());
        assert_eq!(e.n_edges(), g.n_edges());
    }

    #[test]
    fn dot_output_mentions_all_vertices() {
        let g = diamond();
        let dot = g.to_dot("d");
        for v in 0..4 {
            assert!(dot.contains(&format!("v{v} ")), "missing v{v}");
        }
        assert!(dot.contains("->"));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detection() {
        let mut g = Cdag::new();
        let a = g.add_vertex(VKind::Add);
        let b = g.add_vertex(VKind::Add);
        g.add_edge(a, b);
        g.add_edge(b, a);
        let _ = g.topological_order();
    }
}
