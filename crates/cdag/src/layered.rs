//! The layered top-down construction of `Enc_k A`, `Enc_k B`, `Dec_k C` and
//! the full Strassen-like CDAG `H_k` (paper Section 4.1.1).
//!
//! For a base scheme `⟨n₀; r⟩` with `t = n₀²`:
//!
//! * `Dec_k C` is a layered graph with levels `l_1 … l_{k+1}` of sizes
//!   `|l_i| = t^{k-i+1} · r^{i-1}` (Fact 4.6 with `t=4, r=7`); edges only
//!   connect consecutive levels and group into copies of the base graph
//!   `Dec_1 C` ("G₁ components").
//! * `Enc_k A` is its mirror image built from the `U` coefficients, with the
//!   paper-noted subtlety that `Enc₁A` has vertices which are both input and
//!   output (e.g. `A₁₁` feeding `M₃` directly), so `Enc_{lg n}A` has
//!   out-degrees `Θ(lg n)` while `Dec_{lg n}C` has constant degree
//!   (Fact 4.2).
//! * `H_k` composes `Enc_k A`, `Enc_k B`, the `r^k` element-wise
//!   multiplications, and `Dec_k C`.
//!
//! Vertex indices inside a level use the mixed-radix convention
//! `m = region · r^j + inner` (level `j` counted from the output side for
//! `Dec`), which makes the recursion tree `T_k` of Figure 3 a family of
//! contiguous ranges — see [`crate::tree`].

use crate::graph::{Cdag, VKind};
use fastmm_matrix::scheme::BilinearScheme;

/// The support structure of a scheme, as needed for CDAG construction.
///
/// A rectangular `⟨m,k,n;r⟩` scheme has three distinct per-component block
/// counts — `ta = mk` inputs per `Enc₁A` component, `tb = kn` per `Enc₁B`,
/// and `tc = mn` outputs per `Dec₁C` — which all coincide with `n₀²` in the
/// square case.
#[derive(Clone, Debug)]
pub struct SchemeShape {
    /// Scheme name (for diagnostics).
    pub name: String,
    /// `ta = m·k`: inputs per `Enc₁A` component.
    pub ta: usize,
    /// `tb = k·n`: inputs per `Enc₁B` component.
    pub tb: usize,
    /// `tc = m·n`: outputs per `Dec₁C` component.
    pub tc: usize,
    /// `r`: multiplication count (inputs of `Dec₁C`, outputs per `Enc₁`
    /// component).
    pub r: usize,
    /// For each product `l`, the A-blocks with nonzero `U` coefficient.
    pub u_support: Vec<Vec<usize>>,
    /// For each product `l`, the B-blocks with nonzero `V` coefficient.
    pub v_support: Vec<Vec<usize>>,
    /// For each output `q`, the products with nonzero `W` coefficient.
    pub w_support: Vec<Vec<usize>>,
    /// For each product `l`, `Some(q)` if the left operand is exactly block
    /// `q` (unit coefficient singleton) — an input=output vertex of `Enc₁A`.
    pub u_alias: Vec<Option<usize>>,
    /// Same for the right operand.
    pub v_alias: Vec<Option<usize>>,
}

impl SchemeShape {
    /// Extract the shape of a concrete bilinear scheme.
    pub fn from_scheme(s: &BilinearScheme) -> Self {
        let (bm, bk, bn) = s.dims();
        let (ta, tb, tc) = (bm * bk, bk * bn, bm * bn);
        let u_support: Vec<Vec<usize>> = (0..s.r).map(|l| s.u.row_support(l)).collect();
        let v_support: Vec<Vec<usize>> = (0..s.r).map(|l| s.v.row_support(l)).collect();
        let w_support: Vec<Vec<usize>> = (0..tc).map(|q| s.w.row_support(q)).collect();
        let unit_singleton =
            |support: &Vec<usize>, coeffs: &fastmm_matrix::scheme::Coeffs, l: usize| {
                if support.len() == 1 && coeffs.get(l, support[0]) == 1 {
                    Some(support[0])
                } else {
                    None
                }
            };
        let u_alias = (0..s.r)
            .map(|l| unit_singleton(&u_support[l], &s.u, l))
            .collect();
        let v_alias = (0..s.r)
            .map(|l| unit_singleton(&v_support[l], &s.v, l))
            .collect();
        SchemeShape {
            name: s.name.clone(),
            ta,
            tb,
            tc,
            r: s.r,
            u_support,
            v_support,
            w_support,
            u_alias,
            v_alias,
        }
    }

    /// Number of `Dec₁C` edges (one per nonzero of `W`).
    pub fn dec1_edges(&self) -> usize {
        self.w_support.iter().map(Vec::len).sum()
    }
}

/// `t^{k-j} · r^j` as usize (level sizes); panics on overflow.
fn level_size(t: usize, r: usize, k: usize, j: usize) -> usize {
    t.checked_pow((k - j) as u32)
        .and_then(|a| a.checked_mul(r.pow(j as u32)))
        .expect("level size overflow")
}

/// The layered decode graph `Dec_k C`.
///
/// Level `j ∈ 0..=k` (counted from the **output** side, so `j = 0` is the
/// paper's `l_1` and `j = k` is `l_{k+1}`, the product inputs) occupies the
/// contiguous id range returned by [`DecGraph::level_range`].
pub struct DecGraph {
    /// The underlying CDAG. Edges are directed from level `j+1` to level `j`
    /// (products flow toward outputs).
    pub graph: Cdag,
    /// Recursion depth `k`.
    pub k: usize,
    /// Outputs per `Dec₁C` component: `t = m·n` (`n₀²` when square).
    pub t: usize,
    /// `r`: the scheme's multiplication count.
    pub r: usize,
    offsets: Vec<u32>,
}

impl DecGraph {
    /// Number of levels (`k + 1`).
    pub fn n_levels(&self) -> usize {
        self.k + 1
    }

    /// Size of level `j`.
    pub fn level_size(&self, j: usize) -> usize {
        level_size(self.t, self.r, self.k, j)
    }

    /// Contiguous id range of level `j`.
    pub fn level_range(&self, j: usize) -> std::ops::Range<u32> {
        self.offsets[j]..self.offsets[j + 1]
    }

    /// Id of the vertex at `(level j, index m)`.
    #[inline]
    pub fn vertex(&self, j: usize, m: usize) -> u32 {
        debug_assert!(m < self.level_size(j));
        self.offsets[j] + m as u32
    }

    /// Inverse of [`DecGraph::vertex`]: which `(level, index)` an id is.
    pub fn locate(&self, v: u32) -> (usize, usize) {
        let j = match self.offsets.binary_search(&v) {
            Ok(j) if j <= self.k => j,
            Ok(j) => j - 1,
            Err(j) => j - 1,
        };
        (j, (v - self.offsets[j]) as usize)
    }

    /// Total number of `G₁` (i.e. `Dec₁C`) components between levels `j+1`
    /// and `j`: `t^{k-j-1} · r^j`.
    pub fn component_count(&self, j: usize) -> usize {
        assert!(j < self.k);
        level_size(self.t, self.r, self.k - 1, j)
    }

    /// The component `(j, o, c)`: its `r` input vertices live at level `j+1`
    /// and its `t` output vertices at level `j`.
    pub fn component(&self, j: usize, o: usize, c: usize) -> DecComponent<'_> {
        debug_assert!(o < self.t.pow((self.k - j - 1) as u32));
        debug_assert!(c < self.r.pow(j as u32));
        DecComponent { dec: self, j, o, c }
    }

    /// Iterate over all components between levels `j+1` and `j`.
    pub fn components_at(&self, j: usize) -> impl Iterator<Item = DecComponent<'_>> {
        let n_o = self.t.pow((self.k - j - 1) as u32);
        let n_c = self.r.pow(j as u32);
        (0..n_o).flat_map(move |o| (0..n_c).map(move |c| self.component(j, o, c)))
    }

    /// Fact 4.6: `3/7 ≤ |l_{k+1}| / |V| ≤ (3/7)·1/(1-(4/7)^{k+2})` in the
    /// Strassen case; returns `(|top level| / |V|, |bottom level| / |V|)`.
    pub fn level_fractions(&self) -> (f64, f64) {
        let v = self.graph.n_vertices() as f64;
        (
            self.level_size(self.k) as f64 / v,
            self.level_size(0) as f64 / v,
        )
    }

    /// Decompose into edge-disjoint copies of `Dec_kk C` (Claim 2.1 /
    /// Corollary 4.4). Requires `kk` to divide `k`. Returns, per copy, the
    /// global vertex ids listed copy-level by copy-level (outputs first).
    pub fn decompose(&self, kk: usize) -> Vec<Vec<u32>> {
        assert!(kk >= 1 && self.k.is_multiple_of(kk), "kk must divide k");
        let (t, r) = (self.t, self.r);
        let mut copies = Vec::new();
        for s in 0..self.k / kk {
            let a0 = s * kk; // stripe spans global levels a0 ..= a0+kk
            let n_hat_o = t.pow((self.k - a0 - kk) as u32);
            let n_hat_c = r.pow(a0 as u32);
            for o_hat in 0..n_hat_o {
                for c_hat in 0..n_hat_c {
                    let mut verts = Vec::new();
                    for jj in 0..=kk {
                        let n_rho = t.pow((kk - jj) as u32);
                        let n_gamma = r.pow(jj as u32);
                        for rho in 0..n_rho {
                            for gamma in 0..n_gamma {
                                let region = o_hat * n_rho + rho;
                                let inner = gamma * r.pow(a0 as u32) + c_hat;
                                let m = region * r.pow((a0 + jj) as u32) + inner;
                                verts.push(self.vertex(a0 + jj, m));
                            }
                        }
                    }
                    copies.push(verts);
                }
            }
        }
        copies
    }
}

/// A single `Dec₁C` component inside a [`DecGraph`].
pub struct DecComponent<'a> {
    dec: &'a DecGraph,
    j: usize,
    o: usize,
    c: usize,
}

impl DecComponent<'_> {
    /// Global id of input slot `l ∈ 0..r` (at level `j+1`).
    pub fn input(&self, l: usize) -> u32 {
        let r = self.dec.r;
        let rj = r.pow(self.j as u32);
        self.dec
            .vertex(self.j + 1, self.o * rj * r + l * rj + self.c)
    }

    /// Global id of output slot `q ∈ 0..t` (at level `j`).
    pub fn output(&self, q: usize) -> u32 {
        let rj = self.dec.r.pow(self.j as u32);
        self.dec
            .vertex(self.j, (self.o * self.dec.t + q) * rj + self.c)
    }

    /// All vertices of the component (inputs then outputs).
    pub fn vertices(&self) -> Vec<u32> {
        (0..self.dec.r)
            .map(|l| self.input(l))
            .chain((0..self.dec.t).map(|q| self.output(q)))
            .collect()
    }
}

/// Build `Dec_k C` for a scheme shape. Every output row of `W` must have at
/// least two nonzeros (true for all shipped schemes), so no aliasing occurs.
pub fn build_dec(shape: &SchemeShape, k: usize) -> DecGraph {
    assert!(k >= 1);
    assert!(
        shape.w_support.iter().all(|s| s.len() >= 2),
        "decode rows must combine at least two products"
    );
    let (t, r) = (shape.tc, shape.r);
    let mut offsets = Vec::with_capacity(k + 2);
    let mut acc = 0u32;
    for j in 0..=k {
        offsets.push(acc);
        acc += level_size(t, r, k, j) as u32;
    }
    offsets.push(acc);
    let vertex = |j: usize, m: usize| offsets[j] + m as u32;
    let mut graph = Cdag::new();
    for j in 0..=k {
        let kind = if j == k { VKind::Mul } else { VKind::Add };
        for _ in 0..level_size(t, r, k, j) {
            graph.add_vertex(kind);
        }
    }
    for j in 0..k {
        let n_o = t.pow((k - j - 1) as u32);
        let n_c = r.pow(j as u32);
        let rj = r.pow(j as u32);
        for o in 0..n_o {
            for c in 0..n_c {
                for (q, prods) in shape.w_support.iter().enumerate() {
                    let out = vertex(j, (o * t + q) * rj + c);
                    for &l in prods {
                        let inp = vertex(j + 1, o * rj * r + l * rj + c);
                        graph.add_edge(inp, out);
                    }
                }
            }
        }
    }
    graph.inputs = (offsets[k]..offsets[k + 1]).collect();
    graph.outputs = (offsets[0]..offsets[1]).collect();
    DecGraph {
        graph,
        k,
        t,
        r,
        offsets,
    }
}

/// Which operand an encode graph encodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EncSide {
    /// Encode the left operand `A` (coefficients `U`).
    A,
    /// Encode the right operand `B` (coefficients `V`).
    B,
}

/// The layered encode graph `Enc_k A` or `Enc_k B`.
///
/// Unlike [`DecGraph`], levels may *alias*: a product whose operand is a bare
/// block reuses the input vertex (the input=output vertices of Section 4.1),
/// so per-level id arrays are stored explicitly.
pub struct EncGraph {
    /// The underlying CDAG; edges directed from level `j` to level `j+1`.
    pub graph: Cdag,
    /// Recursion depth `k`.
    pub k: usize,
    /// Inputs per `Enc₁` component on this side: `m·k` for `A`, `k·n` for
    /// `B` (`n₀²` when square).
    pub t: usize,
    /// `r`: the scheme's multiplication count.
    pub r: usize,
    /// `levels[j][m]` = vertex id; `levels[0]` are the `t^k` inputs and
    /// `levels[k]` the `r^k` encoded operands.
    pub levels: Vec<Vec<u32>>,
}

impl EncGraph {
    /// Size of level `j` (`t^{k-j} r^j`, mirroring the decode graph).
    pub fn level_size(&self, j: usize) -> usize {
        self.levels[j].len()
    }

    /// Number of *distinct* vertices (aliased levels share ids).
    pub fn n_vertices(&self) -> usize {
        self.graph.n_vertices()
    }
}

/// Build `Enc_k A` (or `B`) for a scheme shape. Each side uses its own
/// per-component input count (`ta` or `tb`), so rectangular schemes get the
/// correctly-shaped encode graphs.
pub fn build_enc(shape: &SchemeShape, side: EncSide, k: usize) -> EncGraph {
    assert!(k >= 1);
    let (t, support, alias) = match side {
        EncSide::A => (shape.ta, &shape.u_support, &shape.u_alias),
        EncSide::B => (shape.tb, &shape.v_support, &shape.v_alias),
    };
    let r = shape.r;
    let mut graph = Cdag::new();
    let mut levels: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
    let inputs: Vec<u32> = (0..level_size(t, r, k, 0))
        .map(|_| graph.add_vertex(VKind::Input))
        .collect();
    levels.push(inputs.clone());
    for j in 0..k {
        let within = t.pow((k - j - 1) as u32); // positions p per region
        let n_regions = r.pow(j as u32);
        let mut next = vec![u32::MAX; level_size(t, r, k, j + 1)];
        for g in 0..n_regions {
            for p in 0..within {
                for (l, qs) in support.iter().enumerate() {
                    let out_idx = (g * r + l) * within + p;
                    if let Some(q) = alias[l] {
                        // input=output vertex: the operand is the block itself
                        next[out_idx] = levels[j][g * (within * t) + q * within + p];
                    } else {
                        let v = graph.add_vertex(VKind::Add);
                        for &q in qs {
                            graph.add_edge(levels[j][g * (within * t) + q * within + p], v);
                        }
                        next[out_idx] = v;
                    }
                }
            }
        }
        debug_assert!(next.iter().all(|&v| v != u32::MAX));
        levels.push(next);
    }
    graph.inputs = levels[0].clone();
    graph.outputs = levels[k].clone();
    EncGraph {
        graph,
        k,
        t,
        r,
        levels,
    }
}

/// The full Strassen-like CDAG `H_k`: `Enc_k A`, `Enc_k B`, the `r^k`
/// element-wise products, and `Dec_k C`.
pub struct HGraph {
    /// The composed CDAG.
    pub graph: Cdag,
    /// Recursion depth.
    pub k: usize,
    /// Id offset at which the decode part starts (decode vertex `v` of the
    /// standalone [`DecGraph`] has id `dec_offset + v` here).
    pub dec_offset: u32,
    /// Standalone decode graph (for level arithmetic; its ids are local).
    pub dec: DecGraph,
    /// Ids of the `r^k` multiplication vertices.
    pub mults: Vec<u32>,
    /// Ids of the `A`-input vertices.
    pub a_inputs: Vec<u32>,
    /// Ids of the `B`-input vertices.
    pub b_inputs: Vec<u32>,
}

/// Build `H_k` for a scheme shape.
///
/// The decode part is placed after both encode parts, so the fraction of
/// vertices lying in `Dec_k C` (the paper's `α ≥ 1/3`, used by Lemma 3.3)
/// can be read off directly.
pub fn build_h(shape: &SchemeShape, k: usize) -> HGraph {
    let enc_a = build_enc(shape, EncSide::A, k);
    let enc_b = build_enc(shape, EncSide::B, k);
    let dec = build_dec(shape, k);

    let mut graph = Cdag::new();
    // Copy enc_a.
    for v in 0..enc_a.graph.n_vertices() as u32 {
        graph.add_vertex(enc_a.graph.kind(v));
    }
    let off_b = graph.n_vertices() as u32;
    for v in 0..enc_b.graph.n_vertices() as u32 {
        graph.add_vertex(enc_b.graph.kind(v));
    }
    let off_dec = graph.n_vertices() as u32;
    for v in 0..dec.graph.n_vertices() as u32 {
        graph.add_vertex(dec.graph.kind(v));
    }
    for u in 0..enc_a.graph.n_vertices() as u32 {
        for &v in enc_a.graph.succs(u) {
            graph.add_edge(u, v);
        }
    }
    for u in 0..enc_b.graph.n_vertices() as u32 {
        for &v in enc_b.graph.succs(u) {
            graph.add_edge(off_b + u, off_b + v);
        }
    }
    for u in 0..dec.graph.n_vertices() as u32 {
        for &v in dec.graph.succs(u) {
            graph.add_edge(off_dec + u, off_dec + v);
        }
    }
    // Wire encoded operand m (of both sides) into multiplication vertex m,
    // which is decode level-k vertex m.
    let mults: Vec<u32> = dec.level_range(k).map(|v| off_dec + v).collect();
    for (m, &mv) in mults.iter().enumerate() {
        graph.add_edge(enc_a.levels[k][m], mv);
        graph.add_edge(off_b + enc_b.levels[k][m], mv);
    }
    graph.inputs = enc_a.levels[0]
        .iter()
        .copied()
        .chain(enc_b.levels[0].iter().map(|&v| off_b + v))
        .collect();
    graph.outputs = dec.level_range(0).map(|v| off_dec + v).collect();
    let a_inputs = enc_a.levels[0].clone();
    let b_inputs = enc_b.levels[0].iter().map(|&v| off_b + v).collect();
    HGraph {
        graph,
        k,
        dec_offset: off_dec,
        dec,
        mults,
        a_inputs,
        b_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmm_matrix::scheme::{classical_scheme, strassen, winograd};

    fn strassen_shape() -> SchemeShape {
        SchemeShape::from_scheme(&strassen())
    }

    #[test]
    fn dec1_is_the_paper_graph() {
        let dec = build_dec(&strassen_shape(), 1);
        // 7 product inputs + 4 outputs = 11 vertices, 12 edges (nnz of W).
        assert_eq!(dec.graph.n_vertices(), 11);
        assert_eq!(dec.graph.n_edges(), 12);
        assert!(
            dec.graph.is_connected(),
            "Dec1C of Strassen is connected (§5.1.1)"
        );
    }

    #[test]
    fn dec1_winograd_connected() {
        let dec = build_dec(&SchemeShape::from_scheme(&winograd()), 1);
        assert!(dec.graph.is_connected());
    }

    #[test]
    fn dec1_classical_disconnected() {
        // The paper: the cubic algorithm is NOT Strassen-like because Dec1C
        // splits into one component per output.
        let dec = build_dec(&SchemeShape::from_scheme(&classical_scheme(2)), 1);
        assert_eq!(dec.graph.connected_components(), 4);
    }

    #[test]
    fn dec_level_sizes_match_fact_4_6() {
        let k = 4;
        let dec = build_dec(&strassen_shape(), k);
        for j in 0..=k {
            assert_eq!(
                dec.level_size(j),
                4usize.pow((k - j) as u32) * 7usize.pow(j as u32)
            );
        }
        let total: usize = (0..=k).map(|j| dec.level_size(j)).sum();
        assert_eq!(dec.graph.n_vertices(), total);
        // Fact 4.6 (with the exponent corrected to k+1: the geometric sum
        // Σ_{j=0}^{k} (4/7)^j gives |l_{k+1}|/|V| = (3/7)/(1-(4/7)^{k+1});
        // the paper prints k+2, which is slightly too tight).
        let (top, _) = dec.level_fractions();
        assert!(top >= 3.0 / 7.0 - 1e-9);
        let exact = (3.0 / 7.0) / (1.0 - (4.0f64 / 7.0).powi(k as i32 + 1));
        assert!((top - exact).abs() < 1e-9, "top={top} exact={exact}");
    }

    #[test]
    fn dec_degrees_bounded_fact_4_2() {
        // After expanding high in-degree vertices, all degrees <= 6 for
        // Strassen's DecC (Fact 4.2).
        let dec = build_dec(&strassen_shape(), 3);
        let expanded = dec.graph.expand_high_in_degree();
        let max_deg = expanded.max_degree();
        assert!(max_deg <= 6, "max degree {max_deg} > 6");
    }

    #[test]
    fn dec_edge_count_formula() {
        // edges = nnz(W) * sum of component counts
        let shape = strassen_shape();
        for k in 1..=4 {
            let dec = build_dec(&shape, k);
            let comps: usize = (0..k).map(|j| dec.component_count(j)).sum();
            assert_eq!(dec.graph.n_edges(), comps * shape.dec1_edges());
        }
    }

    #[test]
    fn components_partition_edges() {
        let dec = build_dec(&strassen_shape(), 2);
        // every edge belongs to exactly one component's (input,output) pairs
        let mut seen = std::collections::HashSet::new();
        for j in 0..dec.k {
            for comp in dec.components_at(j) {
                for l in 0..dec.r {
                    for q in 0..dec.t {
                        let (u, v) = (comp.input(l), comp.output(q));
                        seen.insert((u, v));
                    }
                }
            }
        }
        for u in 0..dec.graph.n_vertices() as u32 {
            for &v in dec.graph.succs(u) {
                assert!(
                    seen.contains(&(u, v)),
                    "edge ({u},{v}) outside all components"
                );
            }
        }
    }

    #[test]
    fn component_vertices_are_consistent() {
        let dec = build_dec(&strassen_shape(), 3);
        let comp = dec.component(1, 2, 3);
        let vs = comp.vertices();
        assert_eq!(vs.len(), 7 + 4);
        for &v in &vs[..7] {
            let (lev, _) = dec.locate(v);
            assert_eq!(lev, 2);
        }
        for &v in &vs[7..] {
            let (lev, _) = dec.locate(v);
            assert_eq!(lev, 1);
        }
    }

    #[test]
    fn locate_roundtrips() {
        let dec = build_dec(&strassen_shape(), 3);
        for j in 0..=3 {
            for m in [0usize, 1, dec.level_size(j) - 1] {
                let v = dec.vertex(j, m);
                assert_eq!(dec.locate(v), (j, m));
            }
        }
    }

    #[test]
    fn decompose_covers_edges_disjointly() {
        let dec = build_dec(&strassen_shape(), 4);
        let copies = dec.decompose(2);
        // per-stripe copy counts: stripe 0: t^2 * r^0 = 16; stripe 1: r^2 = 49
        assert_eq!(copies.len(), 16 + 49);
        let small = build_dec(&strassen_shape(), 2);
        for c in &copies {
            assert_eq!(c.len(), small.graph.n_vertices());
        }
        // Edge-disjointness: count edges with both endpoints in a copy and
        // adjacent levels; they must sum to the total edge count.
        use std::collections::HashSet;
        let g = &dec.graph;
        let all_edges: Vec<(u32, u32)> = (0..g.n_vertices() as u32)
            .flat_map(|u| g.succs(u).iter().map(move |&v| (u, v)))
            .collect();
        let mut edge_set: HashSet<(u32, u32)> = all_edges.iter().copied().collect();
        let mut covered = 0usize;
        for c in &copies {
            let verts: HashSet<u32> = c.iter().copied().collect();
            let mut local = 0;
            for &(u, v) in &all_edges {
                if verts.contains(&u) && verts.contains(&v) && edge_set.remove(&(u, v)) {
                    local += 1;
                }
            }
            assert_eq!(local, small.graph.n_edges(), "copy must be a full Dec_2");
            covered += local;
        }
        assert_eq!(
            covered,
            dec.graph.n_edges(),
            "decomposition must cover all edges"
        );
    }

    #[test]
    fn enc1_strassen_has_input_output_vertices() {
        let enc = build_enc(&strassen_shape(), EncSide::A, 1);
        // 4 inputs; products M3 = A11·…, M4 = A22·… reuse input vertices, so
        // 5 fresh Add vertices: 9 distinct vertices total.
        assert_eq!(enc.n_vertices(), 9);
        assert_eq!(enc.level_size(0), 4);
        assert_eq!(enc.level_size(1), 7);
        let aliased = enc.levels[1]
            .iter()
            .filter(|v| enc.levels[0].contains(v))
            .count();
        assert_eq!(aliased, 2, "A11 and A22 are used bare");
    }

    #[test]
    fn enc_outdegree_grows_with_k() {
        // Paper: Enc_{lg n}A has vertices of out-degree Θ(lg n).
        let shape = strassen_shape();
        let d2 = build_enc(&shape, EncSide::A, 2)
            .graph
            .out_degrees()
            .into_iter()
            .max()
            .unwrap();
        let d4 = build_enc(&shape, EncSide::A, 4)
            .graph
            .out_degrees()
            .into_iter()
            .max()
            .unwrap();
        assert!(d4 > d2, "out-degree must grow: {d2} vs {d4}");
    }

    #[test]
    fn enc_levels_sizes() {
        let enc = build_enc(&strassen_shape(), EncSide::B, 3);
        assert_eq!(enc.level_size(0), 64);
        assert_eq!(enc.level_size(1), 16 * 7);
        assert_eq!(enc.level_size(2), 4 * 49);
        assert_eq!(enc.level_size(3), 343);
    }

    #[test]
    fn h1_composition_counts() {
        let h = build_h(&strassen_shape(), 1);
        // enc_a: 9, enc_b: 9, dec: 11 = 7 mult + 4 outputs -> total 29
        assert_eq!(h.graph.n_vertices(), 29);
        assert_eq!(h.mults.len(), 7);
        assert_eq!(h.a_inputs.len(), 4);
        assert_eq!(h.b_inputs.len(), 4);
        assert_eq!(h.graph.outputs.len(), 4);
        assert!(h.graph.is_connected());
        // every mult has exactly 2 encode predecessors
        let indeg = h.graph.in_degrees();
        for &m in &h.mults {
            assert_eq!(indeg[m as usize], 2);
        }
    }

    #[test]
    fn h_dec_fraction_at_least_one_third() {
        // "at least one third of the vertices of H_{lg n} are in Dec_{lg n}C"
        for k in 1..=4 {
            let h = build_h(&strassen_shape(), k);
            let frac = h.dec.graph.n_vertices() as f64 / h.graph.n_vertices() as f64;
            assert!(frac >= 1.0 / 3.0, "k={k}: fraction {frac}");
        }
    }

    #[test]
    fn rectangular_shape_carries_per_operand_counts() {
        let shape = SchemeShape::from_scheme(&fastmm_matrix::scheme::winograd_2x4x2());
        assert_eq!((shape.ta, shape.tb, shape.tc), (8, 8, 4));
        assert_eq!(shape.r, 14);
        let sq = strassen_shape();
        assert_eq!((sq.ta, sq.tb, sq.tc), (4, 4, 4));
    }

    #[test]
    fn rectangular_dec_levels_and_connectivity() {
        // Dec_k C of ⟨2,4,2;14⟩: levels (m·n)^{k-j}·r^j = 4^{k-j}·14^j, and
        // its Dec₁C is *connected* (the scheme is Strassen-like in the
        // decode sense), while strassen⊗⟨1,1,2⟩ splits into two Strassen
        // decode copies (one per output column half).
        let deep = SchemeShape::from_scheme(&fastmm_matrix::scheme::winograd_2x4x2());
        for k in 1..=2usize {
            let dec = build_dec(&deep, k);
            for j in 0..=k {
                assert_eq!(
                    dec.level_size(j),
                    4usize.pow((k - j) as u32) * 14usize.pow(j as u32)
                );
            }
        }
        assert!(build_dec(&deep, 1).graph.is_connected());
        let wide = SchemeShape::from_scheme(&fastmm_matrix::scheme::strassen_2x2x4());
        assert_eq!(build_dec(&wide, 1).graph.connected_components(), 2);
    }

    #[test]
    fn rectangular_h_composition_counts() {
        let shape = SchemeShape::from_scheme(&fastmm_matrix::scheme::strassen_2x2x4());
        for k in 1..=2usize {
            let h = build_h(&shape, k);
            assert_eq!(h.a_inputs.len(), 4usize.pow(k as u32), "ta^k A inputs");
            assert_eq!(h.b_inputs.len(), 8usize.pow(k as u32), "tb^k B inputs");
            assert_eq!(h.graph.outputs.len(), 8usize.pow(k as u32), "tc^k outputs");
            assert_eq!(h.mults.len(), 14usize.pow(k as u32), "r^k mults");
            // every mult still has exactly two encode predecessors
            let indeg = h.graph.in_degrees();
            for &m in &h.mults {
                assert_eq!(indeg[m as usize], 2);
            }
        }
    }

    #[test]
    fn h_is_acyclic_and_flows_input_to_output() {
        let h = build_h(&strassen_shape(), 2);
        let order = h.graph.topological_order();
        assert_eq!(order.len(), h.graph.n_vertices());
        // inputs have in-degree 0; outputs out-degree 0
        let indeg = h.graph.in_degrees();
        let outdeg = h.graph.out_degrees();
        for &v in &h.graph.inputs {
            assert_eq!(indeg[v as usize], 0);
        }
        for &v in &h.graph.outputs {
            assert_eq!(outdeg[v as usize], 0);
        }
    }
}
