//! A fixed-size bit set over vertex ids, used to represent the subsets `S`
//! of the partition/expansion arguments, plus sorted-`u32`-slice set
//! algebra (merge / intersect / distinct counting) for the flat read/write
//! operand sets of the partition argument.

/// Fixed-capacity bit set.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitSet({} of {})", self.ones, self.len)
    }
}

impl BitSet {
    /// Empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Insert; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        let idx = i as usize;
        debug_assert!(idx < self.len);
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Remove; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        let idx = i as usize;
        debug_assert!(idx < self.len);
        let w = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Flip membership of `i`.
    pub fn toggle(&mut self, i: u32) {
        if self.contains(i) {
            self.remove(i);
        } else {
            self.insert(i);
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.ones = 0;
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((wi * 64) as u32 + tz)
                }
            })
        })
    }

    /// Build from an iterator of elements.
    pub fn from_iter(len: usize, items: impl IntoIterator<Item = u32>) -> Self {
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Number of distinct values in a sorted slice (duplicates allowed).
pub fn count_distinct_sorted(xs: &[u32]) -> usize {
    debug_assert!(xs.is_sorted());
    let mut c = 0;
    let mut prev = None;
    for &x in xs {
        if prev != Some(x) {
            c += 1;
            prev = Some(x);
        }
    }
    c
}

/// Number of distinct values in the union of two sorted slices, by merge
/// (duplicates allowed inside and across the slices).
pub fn union_count_sorted(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.is_sorted() && b.is_sorted());
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() || j < b.len() {
        let x = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => unreachable!(),
        };
        c += 1;
        while i < a.len() && a[i] == x {
            i += 1;
        }
        while j < b.len() && b[j] == x {
            j += 1;
        }
    }
    c
}

/// Number of distinct values common to two sorted slices.
pub fn intersect_count_sorted(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.is_sorted() && b.is_sorted());
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let x = a[i];
                c += 1;
                while i < a.len() && a[i] == x {
                    i += 1;
                }
                while j < b.len() && b[j] == x {
                    j += 1;
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_count() {
        let mut s = BitSet::new(200);
        assert_eq!(s.count(), 0);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert_eq!(s.count(), 2);
        assert!(s.contains(3));
        assert!(s.contains(130));
        assert!(!s.contains(64));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iteration_in_order() {
        let s = BitSet::from_iter(300, [5u32, 100, 299, 64, 63]);
        let v: Vec<u32> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 100, 299]);
    }

    #[test]
    fn sorted_slice_set_algebra() {
        assert_eq!(count_distinct_sorted(&[]), 0);
        assert_eq!(count_distinct_sorted(&[1, 1, 2, 5, 5, 5, 9]), 4);
        assert_eq!(union_count_sorted(&[], &[]), 0);
        assert_eq!(union_count_sorted(&[1, 2, 2, 4], &[2, 3, 4, 4, 8]), 5);
        assert_eq!(union_count_sorted(&[7], &[]), 1);
        assert_eq!(intersect_count_sorted(&[1, 2, 2, 4], &[2, 3, 4, 4, 8]), 2);
        assert_eq!(intersect_count_sorted(&[1, 3], &[2, 4]), 0);
        // inclusion-exclusion on random-ish fixed data
        let a = [0u32, 2, 2, 5, 9, 9, 12];
        let b = [1u32, 2, 5, 5, 7, 12, 13];
        assert_eq!(
            union_count_sorted(&a, &b) + intersect_count_sorted(&a, &b),
            count_distinct_sorted(&a) + count_distinct_sorted(&b)
        );
    }

    #[test]
    fn toggle_and_clear() {
        let mut s = BitSet::new(10);
        s.toggle(7);
        assert!(s.contains(7));
        s.toggle(7);
        assert!(!s.contains(7));
        s.insert(1);
        s.insert(2);
        s.clear();
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
    }
}
