//! Tracing executor: run a Strassen-like recursion *symbolically* and record
//! the true computation DAG it performs.
//!
//! Where [`crate::layered`] constructs `H_k` top-down from the paper's
//! recursive description, this module derives the CDAG bottom-up from the
//! algorithm itself: matrices of vertex ids flow through the scheme's
//! straight-line programs, so the resulting graph reflects the *actual
//! variant executed* — Winograd's common-subexpression sharing, classical
//! base cases below a cutoff, and the input=output operand reuse the paper
//! discusses for `Enc₁`. Cross-checking the two constructions (vertex
//! classes, product counts, output counts) is one of the strongest
//! consistency tests in the repository.

use crate::graph::{Cdag, VKind};
use fastmm_matrix::scheme::{BilinearScheme, Slp};

/// A square matrix of CDAG vertex ids.
#[derive(Clone, Debug)]
pub struct IdMat {
    /// Side length.
    pub n: usize,
    /// Row-major ids.
    pub ids: Vec<u32>,
}

impl IdMat {
    fn block(&self, g: usize, bi: usize, bj: usize) -> IdMat {
        let bs = self.n / g;
        let mut ids = Vec::with_capacity(bs * bs);
        for i in 0..bs {
            for j in 0..bs {
                ids.push(self.ids[(bi * bs + i) * self.n + (bj * bs + j)]);
            }
        }
        IdMat { n: bs, ids }
    }

    fn assemble(g: usize, blocks: &[IdMat]) -> IdMat {
        let bs = blocks[0].n;
        let n = g * bs;
        let mut ids = vec![0u32; n * n];
        for (q, b) in blocks.iter().enumerate() {
            let (bi, bj) = (q / g, q % g);
            for i in 0..bs {
                for j in 0..bs {
                    ids[(bi * bs + i) * n + (bj * bs + j)] = b.ids[i * bs + j];
                }
            }
        }
        IdMat { n, ids }
    }
}

/// The result of tracing a multiplication.
pub struct TracedCdag {
    /// The recorded CDAG.
    pub graph: Cdag,
    /// Ids of the entries of `A` (row-major).
    pub a: IdMat,
    /// Ids of the entries of `B`.
    pub b: IdMat,
    /// Ids of the entries of the product `C`.
    pub c: IdMat,
    /// Number of multiplication vertices recorded.
    pub n_mults: usize,
}

struct Tracer {
    g: Cdag,
    n_mults: usize,
}

impl Tracer {
    /// Apply an SLP element-wise over block id-matrices.
    fn apply_slp(&mut self, slp: &Slp, inputs: &[IdMat]) -> Vec<IdMat> {
        assert_eq!(inputs.len(), slp.n_inputs);
        let bs = inputs[0].n;
        let mut tape: Vec<IdMat> = inputs.to_vec();
        for op in &slp.ops {
            let mut ids = Vec::with_capacity(bs * bs);
            for e in 0..bs * bs {
                let v = self.g.add_vertex(VKind::Add);
                if op.ca != 0 {
                    self.g.add_edge(tape[op.a].ids[e], v);
                }
                if op.cb != 0 {
                    self.g.add_edge(tape[op.b].ids[e], v);
                }
                ids.push(v);
            }
            tape.push(IdMat { n: bs, ids });
        }
        slp.outputs.iter().map(|&i| tape[i].clone()).collect()
    }

    /// Classical `i-k-j` trace: one Mul vertex per scalar product, an Add
    /// chain per output accumulation.
    fn classical(&mut self, a: &IdMat, b: &IdMat) -> IdMat {
        let n = a.n;
        let mut out = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let mut acc: Option<u32> = None;
                for l in 0..n {
                    let m = self.g.add_vertex(VKind::Mul);
                    self.n_mults += 1;
                    self.g.add_edge(a.ids[i * n + l], m);
                    self.g.add_edge(b.ids[l * n + j], m);
                    acc = Some(match acc {
                        None => m,
                        Some(prev) => {
                            let s = self.g.add_vertex(VKind::Add);
                            self.g.add_edge(prev, s);
                            self.g.add_edge(m, s);
                            s
                        }
                    });
                }
                out.push(acc.expect("n >= 1"));
            }
        }
        IdMat { n, ids: out }
    }

    fn recurse(&mut self, scheme: &BilinearScheme, a: &IdMat, b: &IdMat, cutoff: usize) -> IdMat {
        let n = a.n;
        let n0 = scheme.n0;
        if n <= cutoff || !n.is_multiple_of(n0) {
            return self.classical(a, b);
        }
        let t = n0 * n0;
        let a_blocks: Vec<IdMat> = (0..t).map(|q| a.block(n0, q / n0, q % n0)).collect();
        let b_blocks: Vec<IdMat> = (0..t).map(|q| b.block(n0, q / n0, q % n0)).collect();
        let ta = self.apply_slp(&scheme.enc_a, &a_blocks);
        let tb = self.apply_slp(&scheme.enc_b, &b_blocks);
        let products: Vec<IdMat> = (0..scheme.r)
            .map(|l| self.recurse(scheme, &ta[l], &tb[l], cutoff))
            .collect();
        let c_blocks = self.apply_slp(&scheme.dec_c, &products);
        IdMat::assemble(n0, &c_blocks)
    }
}

/// Trace the scheme's recursion on `n x n` operands (`n` a power of `n₀`),
/// recursing down to `cutoff` and running a classical trace below it.
pub fn trace_multiply(scheme: &BilinearScheme, n: usize, cutoff: usize) -> TracedCdag {
    let mut tr = Tracer {
        g: Cdag::new(),
        n_mults: 0,
    };
    let a = IdMat {
        n,
        ids: (0..n * n).map(|_| tr.g.add_vertex(VKind::Input)).collect(),
    };
    let b = IdMat {
        n,
        ids: (0..n * n).map(|_| tr.g.add_vertex(VKind::Input)).collect(),
    };
    let c = tr.recurse(scheme, &a, &b, cutoff.max(1));
    tr.g.inputs = a.ids.iter().chain(&b.ids).copied().collect();
    tr.g.outputs = c.ids.clone();
    let (_, _, n_mults) = tr.g.kind_counts();
    TracedCdag {
        graph: tr.g,
        a,
        b,
        c,
        n_mults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmm_matrix::recursive::scheme_op_count;
    use fastmm_matrix::scheme::{classical_scheme, strassen, winograd};

    #[test]
    fn strassen_trace_mult_count_is_7_pow_k() {
        for k in 1..=4usize {
            let n = 1 << k;
            let t = trace_multiply(&strassen(), n, 1);
            assert_eq!(t.n_mults, 7usize.pow(k as u32), "n={n}");
        }
    }

    #[test]
    fn classical_trace_mult_count_is_cubic() {
        let t = trace_multiply(&classical_scheme(2), 8, 8);
        assert_eq!(t.n_mults, 512);
    }

    #[test]
    fn trace_add_count_matches_op_count() {
        // Adds recorded in the CDAG must equal the analytic SLP-based count
        // (including the classical base-case adds).
        for (scheme, n, cutoff) in [
            (strassen(), 8usize, 1usize),
            (winograd(), 8, 1),
            (strassen(), 16, 4),
        ] {
            let t = trace_multiply(&scheme, n, cutoff);
            let (_, adds, muls) = t.graph.kind_counts();
            let expect = scheme_op_count(&scheme, n, cutoff);
            assert_eq!(muls as u128, expect.mults, "{} n={n}", scheme.name);
            assert_eq!(adds as u128, expect.adds, "{} n={n}", scheme.name);
        }
    }

    #[test]
    fn trace_is_acyclic_with_correct_io() {
        let t = trace_multiply(&strassen(), 4, 1);
        let order = t.graph.topological_order();
        assert_eq!(order.len(), t.graph.n_vertices());
        assert_eq!(t.graph.inputs.len(), 32); // 2 * 4 * 4
        assert_eq!(t.graph.outputs.len(), 16);
        let indeg = t.graph.in_degrees();
        // binary operations only
        assert!(indeg.iter().all(|&d| d <= 2));
    }

    #[test]
    fn winograd_trace_is_smaller_than_strassen() {
        let ws = trace_multiply(&winograd(), 16, 1).graph.n_vertices();
        let ss = trace_multiply(&strassen(), 16, 1).graph.n_vertices();
        assert!(ws < ss, "winograd {ws} vs strassen {ss}");
    }

    #[test]
    fn outputs_depend_on_inputs() {
        // every output must be reachable from at least one input
        let t = trace_multiply(&strassen(), 4, 1);
        let csr = crate::graph::Csr::from_directed(t.graph.n_vertices(), t.graph.edges());
        let mut reach = vec![false; t.graph.n_vertices()];
        let mut stack: Vec<u32> = t.graph.inputs.clone();
        while let Some(u) = stack.pop() {
            if reach[u as usize] {
                continue;
            }
            reach[u as usize] = true;
            stack.extend(csr.neighbors(u));
        }
        for &o in &t.graph.outputs {
            assert!(reach[o as usize], "output {o} unreachable");
        }
    }

    #[test]
    fn cutoff_reduces_vertices() {
        let fine = trace_multiply(&strassen(), 16, 1).graph.n_vertices();
        let coarse = trace_multiply(&strassen(), 16, 8).graph.n_vertices();
        assert!(coarse > 0 && coarse != fine);
    }
}
