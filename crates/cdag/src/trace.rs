//! Tracing executor: run a Strassen-like recursion *symbolically* and record
//! the true computation DAG it performs.
//!
//! Where [`crate::layered`] constructs `H_k` top-down from the paper's
//! recursive description, this module derives the CDAG bottom-up from the
//! algorithm itself: matrices of vertex ids flow through the scheme's
//! straight-line programs, so the resulting graph reflects the *actual
//! variant executed* — Winograd's common-subexpression sharing, classical
//! base cases below a cutoff, and the input=output operand reuse the paper
//! discusses for `Enc₁`. Rectangular `⟨m,k,n;r⟩` schemes trace the same
//! way: the id matrices simply carry an `m x k` / `k x n` block grid.
//! Cross-checking the two constructions (vertex classes, product counts,
//! output counts) is one of the strongest consistency tests in the
//! repository.
//!
//! Contract note: on a dimension that stops dividing, the tracer (like
//! `scheme_op_count_mkn` and the DFS memory machine, which it is asserted
//! against) switches to the classical kernel — the classic hybrid whose
//! CDAG the paper analyzes. The in-memory engine `multiply_scheme` instead
//! pads per level and keeps recursing, so for non-divisible sizes the trace
//! models the hybrid contract, not the padded execution; on divisible
//! sizes (every `(m^i, k^i, n^i)` shape) the two coincide exactly.

use crate::graph::{Cdag, VKind};
use fastmm_matrix::scheme::{BilinearScheme, Slp};

/// A rectangular matrix of CDAG vertex ids.
#[derive(Clone, Debug)]
pub struct IdMat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major ids.
    pub ids: Vec<u32>,
}

impl IdMat {
    fn block(&self, gr: usize, gc: usize, bi: usize, bj: usize) -> IdMat {
        let (br, bc) = (self.rows / gr, self.cols / gc);
        let mut ids = Vec::with_capacity(br * bc);
        for i in 0..br {
            for j in 0..bc {
                ids.push(self.ids[(bi * br + i) * self.cols + (bj * bc + j)]);
            }
        }
        IdMat {
            rows: br,
            cols: bc,
            ids,
        }
    }

    fn assemble(gr: usize, gc: usize, blocks: &[IdMat]) -> IdMat {
        let (br, bc) = (blocks[0].rows, blocks[0].cols);
        let (rows, cols) = (gr * br, gc * bc);
        let mut ids = vec![0u32; rows * cols];
        for (q, b) in blocks.iter().enumerate() {
            let (bi, bj) = (q / gc, q % gc);
            for i in 0..br {
                for j in 0..bc {
                    ids[(bi * br + i) * cols + (bj * bc + j)] = b.ids[i * bc + j];
                }
            }
        }
        IdMat { rows, cols, ids }
    }
}

/// The result of tracing a multiplication.
pub struct TracedCdag {
    /// The recorded CDAG.
    pub graph: Cdag,
    /// Ids of the entries of `A` (row-major).
    pub a: IdMat,
    /// Ids of the entries of `B`.
    pub b: IdMat,
    /// Ids of the entries of the product `C`.
    pub c: IdMat,
    /// Number of multiplication vertices recorded.
    pub n_mults: usize,
}

struct Tracer {
    g: Cdag,
    n_mults: usize,
}

impl Tracer {
    /// Insert the two in-edges of a binary vertex in ascending source order —
    /// the canonical CSR adjacency order, so the edge log of a traced graph
    /// groups each vertex's predecessors exactly as `Cdag::preds` reports
    /// them.
    fn add_edges2(&mut self, x: u32, y: u32, v: u32) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        self.g.add_edge(lo, v);
        self.g.add_edge(hi, v);
    }

    /// Apply an SLP element-wise over block id-matrices.
    fn apply_slp(&mut self, slp: &Slp, inputs: &[IdMat]) -> Vec<IdMat> {
        assert_eq!(inputs.len(), slp.n_inputs);
        let (br, bc) = (inputs[0].rows, inputs[0].cols);
        let mut tape: Vec<IdMat> = inputs.to_vec();
        for op in &slp.ops {
            let mut ids = Vec::with_capacity(br * bc);
            for e in 0..br * bc {
                let v = self.g.add_vertex(VKind::Add);
                match (op.ca != 0, op.cb != 0) {
                    (true, true) => self.add_edges2(tape[op.a].ids[e], tape[op.b].ids[e], v),
                    (true, false) => self.g.add_edge(tape[op.a].ids[e], v),
                    (false, true) => self.g.add_edge(tape[op.b].ids[e], v),
                    (false, false) => {}
                }
                ids.push(v);
            }
            tape.push(IdMat {
                rows: br,
                cols: bc,
                ids,
            });
        }
        slp.outputs.iter().map(|&i| tape[i].clone()).collect()
    }

    /// Classical `i-k-j` trace: one Mul vertex per scalar product, an Add
    /// chain per output accumulation.
    fn classical(&mut self, a: &IdMat, b: &IdMat) -> IdMat {
        let (mm, kk, nn) = (a.rows, a.cols, b.cols);
        let mut out = Vec::with_capacity(mm * nn);
        for i in 0..mm {
            for j in 0..nn {
                let mut acc: Option<u32> = None;
                for l in 0..kk {
                    let m = self.g.add_vertex(VKind::Mul);
                    self.n_mults += 1;
                    self.add_edges2(a.ids[i * kk + l], b.ids[l * nn + j], m);
                    acc = Some(match acc {
                        None => m,
                        Some(prev) => {
                            let s = self.g.add_vertex(VKind::Add);
                            self.add_edges2(prev, m, s);
                            s
                        }
                    });
                }
                out.push(acc.expect("k >= 1"));
            }
        }
        IdMat {
            rows: mm,
            cols: nn,
            ids: out,
        }
    }

    fn recurse(&mut self, scheme: &BilinearScheme, a: &IdMat, b: &IdMat, cutoff: usize) -> IdMat {
        let (mm, kk, nn) = (a.rows, a.cols, b.cols);
        let (bm, bk, bn) = scheme.dims();
        let divisible = mm.is_multiple_of(bm) && kk.is_multiple_of(bk) && nn.is_multiple_of(bn);
        if mm.max(kk).max(nn) <= cutoff || !divisible || bm * bk * bn == 1 {
            return self.classical(a, b);
        }
        let a_blocks: Vec<IdMat> = (0..bm * bk)
            .map(|q| a.block(bm, bk, q / bk, q % bk))
            .collect();
        let b_blocks: Vec<IdMat> = (0..bk * bn)
            .map(|q| b.block(bk, bn, q / bn, q % bn))
            .collect();
        let ta = self.apply_slp(&scheme.enc_a, &a_blocks);
        let tb = self.apply_slp(&scheme.enc_b, &b_blocks);
        let products: Vec<IdMat> = (0..scheme.r)
            .map(|l| self.recurse(scheme, &ta[l], &tb[l], cutoff))
            .collect();
        let c_blocks = self.apply_slp(&scheme.dec_c, &products);
        IdMat::assemble(bm, bn, &c_blocks)
    }
}

/// Trace the scheme's recursion on `M x K` by `K x N` operands, recursing
/// down to `cutoff` and running a classical trace below it (or whenever a
/// dimension stops dividing — the hybrid contract shared with
/// `scheme_op_count_mkn`).
pub fn trace_multiply_mkn(
    scheme: &BilinearScheme,
    mm: usize,
    kk: usize,
    nn: usize,
    cutoff: usize,
) -> TracedCdag {
    let mut tr = Tracer {
        g: Cdag::new(),
        n_mults: 0,
    };
    let a = IdMat {
        rows: mm,
        cols: kk,
        ids: (0..mm * kk)
            .map(|_| tr.g.add_vertex(VKind::Input))
            .collect(),
    };
    let b = IdMat {
        rows: kk,
        cols: nn,
        ids: (0..kk * nn)
            .map(|_| tr.g.add_vertex(VKind::Input))
            .collect(),
    };
    let c = tr.recurse(scheme, &a, &b, cutoff.max(1));
    tr.g.inputs = a.ids.iter().chain(&b.ids).copied().collect();
    tr.g.outputs = c.ids.clone();
    let (_, _, n_mults) = tr.g.kind_counts();
    TracedCdag {
        graph: tr.g,
        a,
        b,
        c,
        n_mults,
    }
}

/// Trace the scheme's recursion on `n x n` operands (square wrapper over
/// [`trace_multiply_mkn`]).
pub fn trace_multiply(scheme: &BilinearScheme, n: usize, cutoff: usize) -> TracedCdag {
    trace_multiply_mkn(scheme, n, n, n, cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmm_matrix::recursive::{scheme_op_count, scheme_op_count_mkn};
    use fastmm_matrix::scheme::{
        classical_scheme, strassen, strassen_2x2x4, winograd, winograd_2x4x2,
    };

    #[test]
    fn strassen_trace_mult_count_is_7_pow_k() {
        for k in 1..=4usize {
            let n = 1 << k;
            let t = trace_multiply(&strassen(), n, 1);
            assert_eq!(t.n_mults, 7usize.pow(k as u32), "n={n}");
        }
    }

    #[test]
    fn classical_trace_mult_count_is_cubic() {
        let t = trace_multiply(&classical_scheme(2), 8, 8);
        assert_eq!(t.n_mults, 512);
    }

    #[test]
    fn rectangular_trace_mult_count_is_r_pow_k() {
        for k in 1..=2u32 {
            let t = trace_multiply_mkn(
                &strassen_2x2x4(),
                2usize.pow(k),
                2usize.pow(k),
                4usize.pow(k),
                1,
            );
            assert_eq!(t.n_mults, 14usize.pow(k), "level {k}");
        }
    }

    #[test]
    fn rectangular_trace_counts_match_analytic() {
        for (scheme, mm, kk, nn) in [
            (strassen_2x2x4(), 4usize, 4usize, 16usize),
            (winograd_2x4x2(), 4, 16, 4),
            (strassen_2x2x4(), 2, 2, 4),
        ] {
            let t = trace_multiply_mkn(&scheme, mm, kk, nn, 1);
            let (_, adds, muls) = t.graph.kind_counts();
            let expect = scheme_op_count_mkn(&scheme, mm, kk, nn, 1);
            assert_eq!(muls as u128, expect.mults, "{} mults", scheme.name);
            assert_eq!(adds as u128, expect.adds, "{} adds", scheme.name);
            assert_eq!(t.graph.inputs.len(), mm * kk + kk * nn);
            assert_eq!(t.graph.outputs.len(), mm * nn);
        }
    }

    #[test]
    fn trace_add_count_matches_op_count() {
        // Adds recorded in the CDAG must equal the analytic SLP-based count
        // (including the classical base-case adds).
        for (scheme, n, cutoff) in [
            (strassen(), 8usize, 1usize),
            (winograd(), 8, 1),
            (strassen(), 16, 4),
        ] {
            let t = trace_multiply(&scheme, n, cutoff);
            let (_, adds, muls) = t.graph.kind_counts();
            let expect = scheme_op_count(&scheme, n, cutoff);
            assert_eq!(muls as u128, expect.mults, "{} n={n}", scheme.name);
            assert_eq!(adds as u128, expect.adds, "{} n={n}", scheme.name);
        }
    }

    #[test]
    fn trace_is_acyclic_with_correct_io() {
        let t = trace_multiply(&strassen(), 4, 1);
        let order = t.graph.topological_order();
        assert_eq!(order.len(), t.graph.n_vertices());
        assert_eq!(t.graph.inputs.len(), 32); // 2 * 4 * 4
        assert_eq!(t.graph.outputs.len(), 16);
        let indeg = t.graph.in_degrees();
        // binary operations only
        assert!(indeg.iter().all(|&d| d <= 2));
    }

    #[test]
    fn rectangular_trace_is_acyclic() {
        let t = trace_multiply_mkn(&winograd_2x4x2(), 4, 16, 4, 1);
        let order = t.graph.topological_order();
        assert_eq!(order.len(), t.graph.n_vertices());
        let indeg = t.graph.in_degrees();
        assert!(indeg.iter().all(|&d| d <= 2));
    }

    #[test]
    fn winograd_trace_is_smaller_than_strassen() {
        let ws = trace_multiply(&winograd(), 16, 1).graph.n_vertices();
        let ss = trace_multiply(&strassen(), 16, 1).graph.n_vertices();
        assert!(ws < ss, "winograd {ws} vs strassen {ss}");
    }

    #[test]
    fn outputs_depend_on_inputs() {
        // every output must be reachable from at least one input
        let t = trace_multiply(&strassen(), 4, 1);
        let mut reach = vec![false; t.graph.n_vertices()];
        let mut stack: Vec<u32> = t.graph.inputs.clone();
        while let Some(u) = stack.pop() {
            if reach[u as usize] {
                continue;
            }
            reach[u as usize] = true;
            stack.extend(t.graph.succs(u));
        }
        for &o in &t.graph.outputs {
            assert!(reach[o as usize], "output {o} unreachable");
        }
    }

    #[test]
    fn cutoff_reduces_vertices() {
        let fine = trace_multiply(&strassen(), 16, 1).graph.n_vertices();
        let coarse = trace_multiply(&strassen(), 16, 8).graph.n_vertices();
        assert!(coarse > 0 && coarse != fine);
    }
}
