//! Regression suite for the flat-array CSR redesign of [`Cdag`].
//!
//! The pre-redesign graph exposed only the raw edge log (`edges()`); every
//! consumer rebuilt `Vec<Vec<u32>>` adjacency per call. These tests replay
//! the historical constructions verbatim from the (now deprecated) edge log
//! and assert the CSR accessors — and the algorithms rewritten on top of
//! them — produce identical results on every registry scheme's graphs.

#![allow(deprecated)] // the whole point is comparing against `edges()`

use fastmm_cdag::graph::{Cdag, VKind};
use fastmm_cdag::layered::{build_dec, SchemeShape};
use fastmm_cdag::trace::trace_multiply_mkn;
use fastmm_matrix::scheme::all_schemes;

/// Insertion-order predecessor lists, exactly as the pre-redesign pebble
/// executor and `expand_high_in_degree` built them.
fn legacy_preds(g: &Cdag) -> Vec<Vec<u32>> {
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); g.n_vertices()];
    for &(u, v) in g.edges() {
        preds[v as usize].push(u);
    }
    preds
}

/// Insertion-order successor lists from the edge log.
fn legacy_succs(g: &Cdag) -> Vec<Vec<u32>> {
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); g.n_vertices()];
    for &(u, v) in g.edges() {
        succs[u as usize].push(v);
    }
    succs
}

/// The pre-redesign `expand_high_in_degree`, verbatim: predecessors in edge
/// *insertion* order (the CSR rewrite consumes them in ascending-id order).
fn legacy_expand(g: &Cdag) -> Cdag {
    let preds = legacy_preds(g);
    let mut out = Cdag::new();
    for v in 0..g.n_vertices() as u32 {
        out.add_vertex(g.kind(v));
    }
    out.inputs = g.inputs.clone();
    out.outputs = g.outputs.clone();
    for v in 0..g.n_vertices() as u32 {
        let ps = &preds[v as usize];
        if ps.len() <= 2 {
            for &p in ps {
                out.add_edge(p, v);
            }
        } else {
            let mut acc = out.add_vertex(VKind::Add);
            out.add_edge(ps[0], acc);
            out.add_edge(ps[1], acc);
            for &p in &ps[2..ps.len() - 1] {
                let nxt = out.add_vertex(VKind::Add);
                out.add_edge(acc, nxt);
                out.add_edge(p, nxt);
                acc = nxt;
            }
            out.add_edge(acc, v);
            out.add_edge(ps[ps.len() - 1], v);
        }
    }
    out
}

fn assert_same_graph(a: &Cdag, b: &Cdag, what: &str) {
    assert_eq!(a.n_vertices(), b.n_vertices(), "{what}: vertex count");
    assert_eq!(a.n_edges(), b.n_edges(), "{what}: edge count");
    assert_eq!(a.inputs, b.inputs, "{what}: inputs");
    assert_eq!(a.outputs, b.outputs, "{what}: outputs");
    for v in 0..a.n_vertices() as u32 {
        assert_eq!(a.kind(v), b.kind(v), "{what}: kind of {v}");
        assert_eq!(a.succs(v), b.succs(v), "{what}: succs of {v}");
        assert_eq!(a.preds(v), b.preds(v), "{what}: preds of {v}");
    }
}

/// Every registry graph this suite replays: Dec_C at ℓ ∈ {1, 2} plus a
/// one-level trace of the scheme's own block shape.
fn registry_graphs() -> Vec<(String, Cdag)> {
    let mut out = Vec::new();
    for s in all_schemes() {
        let shape = SchemeShape::from_scheme(&s);
        for l in 1..=2usize {
            out.push((format!("{} dec l={l}", s.name), build_dec(&shape, l).graph));
        }
        let t = trace_multiply_mkn(&s, s.bm, s.bk, s.bn, 1);
        out.push((format!("{} trace", s.name), t.graph));
    }
    out
}

#[test]
fn csr_accessors_match_the_edge_log_on_every_registry_graph() {
    for (name, g) in registry_graphs() {
        let mut succs = legacy_succs(&g);
        let mut preds = legacy_preds(&g);
        for v in 0..g.n_vertices() as u32 {
            succs[v as usize].sort_unstable();
            preds[v as usize].sort_unstable();
            assert_eq!(g.succs(v), succs[v as usize], "{name}: succs of {v}");
            assert_eq!(g.preds(v), preds[v as usize], "{name}: preds of {v}");
        }
        let indeg = g.in_degrees();
        let outdeg = g.out_degrees();
        for v in 0..g.n_vertices() {
            assert_eq!(indeg[v] as usize, preds[v].len(), "{name}: indeg {v}");
            assert_eq!(outdeg[v] as usize, succs[v].len(), "{name}: outdeg {v}");
        }
    }
}

/// The layered builders and the tracer insert each vertex's in-edges in
/// ascending source order, so the sorted CSR rows coincide with the
/// historical insertion order — which is what makes the rewritten pebble
/// executor (pin/fault loops over `preds(v)`) bitwise-identical to the
/// pre-redesign `Vec<Vec<u32>>` version on these graphs.
#[test]
fn csr_preds_preserve_historical_insertion_order() {
    for (name, g) in registry_graphs() {
        let preds = legacy_preds(&g);
        for v in 0..g.n_vertices() as u32 {
            assert_eq!(
                g.preds(v),
                preds[v as usize],
                "{name}: insertion order of preds({v}) is not ascending"
            );
        }
    }
}

#[test]
fn expand_high_in_degree_matches_the_legacy_rewrite() {
    for (name, g) in registry_graphs() {
        assert_same_graph(
            &g.expand_high_in_degree(),
            &legacy_expand(&g),
            &format!("{name} expanded"),
        );
    }
    // And on a synthetic wide fan-in star (64 inputs → 1 sum), the shape
    // the partition tests exercise.
    let mut g = Cdag::new();
    let ins: Vec<u32> = (0..64).map(|_| g.add_vertex(VKind::Input)).collect();
    let sum = g.add_vertex(VKind::Add);
    for &i in &ins {
        g.add_edge(i, sum);
    }
    g.inputs = ins;
    g.outputs = vec![sum];
    assert_same_graph(
        &g.expand_high_in_degree(),
        &legacy_expand(&g),
        "star expanded",
    );
}

#[test]
fn kahn_layers_match_longest_path_relaxation_over_the_edge_log() {
    for (name, g) in registry_graphs() {
        // Reference: longest-path levels by repeated relaxation over the raw
        // edge log (quadratic, but independent of the CSR machinery).
        let n = g.n_vertices();
        let mut level = vec![0u32; n];
        loop {
            let mut changed = false;
            for &(u, v) in g.edges() {
                if level[v as usize] < level[u as usize] + 1 {
                    level[v as usize] = level[u as usize] + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let lay = g.kahn_layers();
        assert_eq!(lay.level_of(), level, "{name}: levels");
        assert_eq!(lay.n_vertices(), n, "{name}: layering covers all vertices");
        // ids ascending within each level
        for j in 0..lay.n_levels() {
            assert!(
                lay.level(j).windows(2).all(|w| w[0] < w[1]),
                "{name}: level {j} not ascending"
            );
        }
    }
}
