//! Property-based equivalence suite for the CSR core: on random registry
//! graphs and random DAGs, the flat accessors must agree with the raw edge
//! log, and the vectorized layering must be a topological partition.

#![allow(deprecated)] // properties are stated against the legacy `edges()` log

use fastmm_cdag::graph::{Cdag, VKind};
use fastmm_cdag::layered::{build_dec, SchemeShape};
use fastmm_matrix::scheme::all_schemes;
use proptest::prelude::*;

/// A registry decode graph, depth capped so the big tensor-square schemes
/// (r = 27, 49) stay at test size.
fn registry_dec(idx: usize, l: usize) -> Cdag {
    let schemes = all_schemes();
    let s = &schemes[idx % schemes.len()];
    let l = if s.r > 20 { l.min(2) } else { l };
    build_dec(&SchemeShape::from_scheme(s), l).graph
}

/// Random DAG on `n` vertices: bit `i*(n)+j`-ish flattened upper-triangular
/// mask, edges always `u < v` so the graph is acyclic by construction.
fn random_dag(n: usize, bits: &[bool]) -> Cdag {
    let mut g = Cdag::new();
    for _ in 0..n {
        g.add_vertex(VKind::Add);
    }
    let mut b = bits.iter().cycle();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if *b.next().unwrap() {
                g.add_edge(u, v);
            }
        }
    }
    g
}

fn sorted_rows_from_log(g: &Cdag) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let n = g.n_vertices();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        succs[u as usize].push(v);
        preds[v as usize].push(u);
    }
    for r in succs.iter_mut().chain(preds.iter_mut()) {
        r.sort_unstable();
    }
    (succs, preds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_views_agree_with_edge_log(idx in 0..8usize, l in 1..=3usize) {
        let g = registry_dec(idx, l);
        let (succs, preds) = sorted_rows_from_log(&g);
        let indeg = g.in_degrees();
        let outdeg = g.out_degrees();
        let deg = g.degrees();
        for v in 0..g.n_vertices() as u32 {
            prop_assert_eq!(g.succs(v), &succs[v as usize][..]);
            prop_assert_eq!(g.preds(v), &preds[v as usize][..]);
            prop_assert_eq!(outdeg[v as usize] as usize, succs[v as usize].len());
            prop_assert_eq!(indeg[v as usize] as usize, preds[v as usize].len());
            prop_assert_eq!(deg[v as usize], indeg[v as usize] + outdeg[v as usize]);
        }
    }

    #[test]
    fn layering_is_a_topological_partition(idx in 0..8usize, l in 1..=3usize) {
        let g = registry_dec(idx, l);
        let lay = g.kahn_layers();
        prop_assert_eq!(lay.n_vertices(), g.n_vertices());
        let level = lay.level_of();
        // every vertex sits exactly one level past its deepest predecessor
        for v in 0..g.n_vertices() as u32 {
            let ps = g.preds(v);
            if ps.is_empty() {
                prop_assert_eq!(level[v as usize], 0);
            } else {
                let deepest = ps.iter().map(|&p| level[p as usize]).max().unwrap();
                prop_assert_eq!(level[v as usize], deepest + 1);
            }
        }
        // levels partition 0..n with ascending ids inside each level
        let mut seen = vec![false; g.n_vertices()];
        for j in 0..lay.n_levels() {
            let lv = lay.level(j);
            prop_assert!(!lv.is_empty());
            prop_assert!(lv.windows(2).all(|w| w[0] < w[1]));
            for &v in lv {
                prop_assert_eq!(level[v as usize] as usize, j);
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn random_dags_survive_incremental_rebuilds(
        n in 4..40usize,
        bits in proptest::collection::vec(any::<bool>(), 128),
        extra in proptest::collection::vec(any::<bool>(), 16),
    ) {
        // Build, query (forcing the CSR cache), then mutate and re-query:
        // the cache must be invalidated and rebuilt consistently.
        let mut g = random_dag(n, &bits);
        let before: usize = (0..n as u32).map(|v| g.succs(v).len()).sum();
        prop_assert_eq!(before, g.n_edges());
        let v0 = g.add_vertex(VKind::Mul) ;
        for (i, &b) in extra.iter().enumerate() {
            if b {
                g.add_edge((i % n) as u32, v0);
            }
        }
        let (succs, preds) = sorted_rows_from_log(&g);
        for v in 0..g.n_vertices() as u32 {
            prop_assert_eq!(g.succs(v), &succs[v as usize][..]);
            prop_assert_eq!(g.preds(v), &preds[v as usize][..]);
        }
        // topological order remains valid on the mutated graph
        let order = g.topological_order();
        let mut pos = vec![0usize; g.n_vertices()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for &(u, v) in g.edges() {
            prop_assert!(pos[u as usize] < pos[v as usize]);
        }
    }
}
