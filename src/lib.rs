//! # fastmm — umbrella crate
//!
//! Single-dependency entry point for the reproduction of *Ballard, Demmel,
//! Holtz, Schwartz, "Graph Expansion and Communication Costs of Fast Matrix
//! Multiplication" (SPAA'11)*. Re-exports the full crate stack and hosts the
//! repo-level integration suites (`tests/`) and runnable examples
//! (`examples/`).
//!
//! Layout (dependency order, substrate first):
//!
//! * [`matrix`] — dense matrices, exact scalars, bilinear schemes;
//! * [`cdag`] — computation DAGs of Strassen-like algorithms;
//! * [`expansion`] — edge expansion of `Dec_k C` with certificates;
//! * [`pebble`] — pebbling schedules and the partition lower bound;
//! * [`memsim`] — sequential two-level memory simulation;
//! * [`parsim`] — distributed-memory simulation (Cannon, 2.5D, CAPS);
//! * [`core`] — the paper's communication bounds and the expansion ⇒ I/O
//!   pipeline;
//! * [`serve`] — long-lived batched multiply service over the arena
//!   engine (wire format, worker shards, backpressure);
//! * [`bench`](mod@bench) — experiment harness behind the `repro_*`
//!   binaries.

#![warn(missing_docs)]

pub use fastmm_bench as bench;
pub use fastmm_core as core;
pub use fastmm_core::cdag;
pub use fastmm_core::expansion;
pub use fastmm_core::matrix;
pub use fastmm_core::memsim;
pub use fastmm_core::parsim;
pub use fastmm_core::pebble;
pub use fastmm_serve as serve;

/// Convenient glob import, re-exported from [`fastmm_core::prelude`].
pub mod prelude {
    pub use fastmm_core::prelude::*;
}
