//! Sweep fast-memory size M and watch sequential communication costs track
//! `(n/√M)^{ω₀}·M` — Theorem 1.1/1.3 and Equation (1) in one plot-ready
//! table.
//!
//! Run with: `cargo run --release -p fastmm-core --example memory_sweep`

use fastmm_core::prelude::*;
use fastmm_memsim::explicit::{multiply_blocked_explicit, multiply_dfs_explicit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::<f64>::random(n, n, &mut rng);
    let b = Matrix::<f64>::random(n, n, &mut rng);

    println!("n = {n}; words moved vs M (both measured on the two-level machine)");
    println!("M      strassen(meas)  strassen-LB  ratio   classical(meas)  classical-LB  ratio");
    for m in [96usize, 192, 384, 768, 1536, 3072, 6144] {
        let s = multiply_dfs_explicit(&strassen(), &a, &b, m);
        let c = multiply_blocked_explicit(&a, &b, m);
        let slb = seq_bandwidth_lower_bound(STRASSEN, n, m);
        let clb = seq_bandwidth_lower_bound(CLASSICAL, n, m);
        println!(
            "{:<6} {:<15} {:<12.0} {:<7.2} {:<16} {:<13.0} {:.2}",
            m,
            s.io.total_words(),
            slb,
            s.io.total_words() as f64 / slb,
            c.io.total_words(),
            clb,
            c.io.total_words() as f64 / clb,
        );
    }
    println!();
    println!("Latency (messages) follows bandwidth / M — footnote 8:");
    for m in [192usize, 768, 3072] {
        let s = multiply_dfs_explicit(&strassen(), &a, &b, m);
        println!(
            "M = {:<5}: msgs = {:<6} bandwidth/M = {:.0}",
            m,
            s.io.total_msgs(),
            s.io.total_words() as f64 / m as f64
        );
    }
}
