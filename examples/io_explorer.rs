//! Explore how the *implementation* (schedule) of the same computation DAG
//! changes its I/O — Sections 1.2 and 3 made tangible.
//!
//! Traces the true CDAG of a Strassen run, executes it under different
//! total orders and eviction policies on the two-level DAG machine, and
//! compares everything against the Equation (6) partition bound.
//!
//! Run with: `cargo run --release -p fastmm-core --example io_explorer`

use fastmm_cdag::trace::trace_multiply;
use fastmm_core::prelude::*;
use fastmm_pebble::executor::{execute_schedule, Evict};
use fastmm_pebble::partition::partition_lower_bound;
use fastmm_pebble::schedule::{bfs_order, identity_order, random_topological};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 32;
    let t = trace_multiply(&strassen(), n, 1);
    println!(
        "Strassen CDAG for n = {n}: {} vertices ({} inputs, {} mults), {} edges",
        t.graph.n_vertices(),
        t.graph.inputs.len(),
        t.n_mults,
        t.graph.n_edges()
    );

    let dfs = identity_order(&t.graph);
    let bfs = bfs_order(&t.graph);
    let mut rng = StdRng::seed_from_u64(11);
    let rnd = random_topological(&t.graph, &mut rng);

    println!("\nM     Eq.(6) bound   DFS+Belady  DFS+LRU    BFS+Belady  random+Belady");
    for m in [16usize, 32, 64, 128, 256] {
        let (bound, _) = partition_lower_bound(&t.graph, &dfs, m);
        let dfs_bel = execute_schedule(&t.graph, &dfs, m, Evict::Belady).total();
        let dfs_lru = execute_schedule(&t.graph, &dfs, m, Evict::Lru).total();
        let bfs_bel = execute_schedule(&t.graph, &bfs, m, Evict::Belady).total();
        let rnd_bel = execute_schedule(&t.graph, &rnd, m, Evict::Belady).total();
        println!(
            "{:<5} {:<13} {:<11} {:<10} {:<11} {}",
            m, bound, dfs_bel, dfs_lru, bfs_bel, rnd_bel
        );
    }

    println!("\nTakeaways (all consistent with the paper):");
    println!(" - the partition bound never exceeds any implementation's measured I/O;");
    println!(" - the depth-first order is the communication-efficient implementation;");
    println!(" - breadth-first/random orders pay dearly: the bound constrains *every* order.");
}
