//! Quickstart: multiply matrices with Strassen, verify against the
//! classical kernel, and ask the paper's theory what the multiplication
//! *must* cost in communication.
//!
//! Run with: `cargo run --release -p fastmm-core --example quickstart`

use fastmm_core::prelude::*;
use fastmm_memsim::explicit::multiply_dfs_explicit;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(42);
    let a = Matrix::<f64>::random(n, n, &mut rng);
    let b = Matrix::<f64>::random(n, n, &mut rng);

    // 1. Fast multiplication, checked against the classical kernel.
    let c_fast = multiply_strassen(&a, &b, 32);
    let c_ref = multiply_naive(&a, &b);
    let err = c_fast.max_abs_diff(&c_ref, |x| x);
    println!("Strassen vs classical: n = {n}, max |diff| = {err:.2e}");

    // 2. Arithmetic counts: Strassen's recursion beats 2n³ asymptotically.
    let strassen_ops = scheme_op_count(&strassen(), n, 1);
    let winograd_ops = scheme_op_count(&winograd(), n, 1);
    let classical_flops = 2 * (n as u128).pow(3) - (n as u128).pow(2);
    println!(
        "flops: classical = {classical_flops}, strassen = {} ({} mults, {} adds), winograd = {}",
        strassen_ops.total(),
        strassen_ops.mults,
        strassen_ops.adds,
        winograd_ops.total(),
    );

    // 3. Communication: run on the simulated two-level machine (M words of
    //    fast memory) and compare with Theorem 1.1's lower bound.
    for m in [768usize, 3072] {
        let run = multiply_dfs_explicit(&strassen(), &a, &b, m);
        let lower = seq_bandwidth_lower_bound(STRASSEN, n, m);
        println!(
            "M = {m}: moved {} words ({} messages), Theorem 1.1 bound = {:.0}, ratio = {:.2}",
            run.io.total_words(),
            run.io.total_msgs(),
            lower,
            run.io.total_words() as f64 / lower,
        );
    }

    // 4. The same question for a parallel machine (Corollary 1.2).
    let (p, m) = (49, 3 * n * n / 49);
    println!(
        "p = {p}, M = {m}: every parallel Strassen implementation must move >= {:.0} words/rank",
        par_bandwidth_lower_bound(STRASSEN, n, m, p)
    );
}
