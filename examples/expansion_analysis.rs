//! Expansion analysis of the Strassen decode graph — the heart of the
//! paper's proof (Section 4).
//!
//! Builds `Dec_k C`, estimates its edge expansion three ways (exact, best
//! cut found, spectral Cheeger), replays the Lemma 4.3 proof quantities on
//! the best cut, and prints a DOT drawing of `Dec₁C` (Figure 2, top left).
//!
//! Run with: `cargo run --release -p fastmm-core --example expansion_analysis`

use fastmm_cdag::layered::{build_dec, SchemeShape};
use fastmm_core::prelude::*;
use fastmm_expansion::certificate::{lemma43_certificate, lemma43_min_expansion};
use fastmm_expansion::exact::exact_h;
use fastmm_expansion::search::{find_best_cut, SearchOptions};
use fastmm_expansion::spectral::spectral_bounds;

fn main() {
    let shape = SchemeShape::from_scheme(&strassen());

    println!("-- Dec_1 C (Figure 2, top-left) --");
    let dec1 = build_dec(&shape, 1);
    println!("{}", dec1.graph.to_dot("Dec1C"));
    let exact = exact_h(dec1.graph.undirected_csr(), dec1.graph.max_degree());
    println!(
        "exact h(Dec_1 C) = {:.4} (cut {} edges at |U| = {})",
        exact.expansion, exact.cut_edges, exact.size
    );

    println!("\n-- h(Dec_k C) series (Lemma 4.3: h = Omega((4/7)^k)) --");
    println!("k | best cut h | h*(7/4)^k | Cheeger lower | proof guarantee");
    for k in 1..=4usize {
        let dec = build_dec(&shape, k);
        let csr = dec.graph.undirected_csr();
        let d = dec.graph.max_degree();
        let n = dec.graph.n_vertices();
        let cut = if n <= 24 {
            let e = exact_h(csr, d);
            fastmm_expansion::search::evaluate_cut(
                csr,
                d,
                fastmm_cdag::BitSet::from_iter(
                    n,
                    (0..n as u32).filter(|&v| (e.mask >> v) & 1 == 1),
                ),
            )
        } else {
            find_best_cut(csr, d, SearchOptions::with_max_size(n / 2))
        };
        let (spec, _) = spectral_bounds(csr, d, 400);
        let guar = lemma43_min_expansion(&dec, d);
        println!(
            "{k} | {:.5} | {:.4} | {:.5} | {:.6}",
            cut.expansion,
            cut.expansion * (7.0f64 / 4.0).powi(k as i32),
            spec.cheeger_lower,
            guar
        );
        if k == 3 {
            let cert = lemma43_certificate(&dec, &cut.set);
            println!(
                "  proof replay at k=3: cut {} >= mixed components {} >= bounds (level {:.1}, tree {:.1}, leaf {:.1})",
                cert.cut_edges,
                cert.mixed_components,
                cert.level_bound,
                cert.tree_bound,
                cert.leaf_bound
            );
        }
    }

    println!("\n-- from expansion to I/O (Lemma 3.3) --");
    let h_lower = |k: usize| {
        let dec = build_dec(&shape, k.min(4));
        lemma43_min_expansion(&dec, dec.graph.max_degree())
            * (4.0f64 / 7.0).powi(k.saturating_sub(4.min(k)) as i32)
    };
    for (lg_n, m) in [(10usize, 1 << 8), (12, 1 << 8), (12, 1 << 12)] {
        match fastmm_core::pipeline::expansion_io_bound(STRASSEN, lg_n, m, h_lower) {
            Some(b) => println!(
                "n = 2^{lg_n}, M = {m}: IO >= {:.3e} words (via k = {}, s = {:.0})",
                b.io_words, b.k, b.s
            ),
            None => println!("n = 2^{lg_n}, M = {m}: problem fits in fast memory"),
        }
    }
}
