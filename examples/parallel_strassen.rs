//! Communication-optimal parallel Strassen (CAPS) on the simulated
//! distributed-memory machine, head-to-head with Cannon's classical 2D
//! algorithm — the "attained by" column of Table I.
//!
//! Run with: `cargo run --release -p fastmm-core --example parallel_strassen`

use fastmm_core::prelude::*;
use fastmm_parsim::cannon::cannon;
use fastmm_parsim::caps::{caps, CapsPlan};
use fastmm_parsim::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let p = 49;
    let n = 196;
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::<f64>::random(n, n, &mut rng);
    let b = Matrix::<f64>::random(n, n, &mut rng);
    let reference = multiply_naive(&a, &b);

    println!("p = {p}, n = {n}\n");

    // Cannon: the classical 2D baseline, M = Θ(n²/p).
    let (c_cannon, r_cannon) = cannon(MachineConfig::new(p), &a, &b);
    println!(
        "cannon : words/rank = {:>7}, msgs/rank = {:>4}, mem/rank = {:>6}, err = {:.1e}",
        r_cannon.max_words(),
        r_cannon.max_msgs(),
        r_cannon.max_memory(),
        c_cannon.max_abs_diff(&reference, |x| x)
    );

    // CAPS, BFS-only (maximal memory, minimal communication).
    let plan = CapsPlan::new(p, n, 0).expect("valid plan");
    let (c_caps, r_caps) = caps(MachineConfig::new(p), &plan, &a, &b);
    println!(
        "caps   : words/rank = {:>7}, msgs/rank = {:>4}, mem/rank = {:>6}, err = {:.1e}",
        r_caps.max_words(),
        r_caps.max_msgs(),
        r_caps.max_memory(),
        c_caps.max_abs_diff(&reference, |x| x)
    );

    // CAPS with a DFS step: less memory, more communication.
    if let Ok(plan_dfs) = CapsPlan::new(p, 392, 1) {
        let a2 = Matrix::<f64>::random(392, 392, &mut rng);
        let b2 = Matrix::<f64>::random(392, 392, &mut rng);
        let (_, r_dfs) = caps(MachineConfig::new(p), &plan_dfs, &a2, &b2);
        let plan_bfs = CapsPlan::new(p, 392, 0).expect("valid");
        let (_, r_bfs) = caps(MachineConfig::new(p), &plan_bfs, &a2, &b2);
        println!(
            "\nn = 392 schedule trade-off: BFS-only mem {} words {} | 1 DFS step mem {} words {}",
            r_bfs.max_memory(),
            r_bfs.max_words(),
            r_dfs.max_memory(),
            r_dfs.max_words()
        );
    }

    // What the theory says each must move (Cor. 1.2/1.4 with measured M).
    let m_cannon = r_cannon.max_memory();
    let m_caps = r_caps.max_memory();
    println!(
        "\nclassical LB at M = {m_cannon}: {:.0} words/rank; Strassen-like LB at M = {m_caps}: {:.0} words/rank",
        par_bandwidth_lower_bound(CLASSICAL, n, m_cannon, p),
        par_bandwidth_lower_bound(STRASSEN, n, m_caps, p),
    );
    println!(
        "caps/cannon words ratio = {:.2} (Strassen-like algorithms may — and do — move fewer words)",
        r_caps.max_words() as f64 / r_cannon.max_words() as f64
    );
}
